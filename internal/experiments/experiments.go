// Package experiments contains one driver per table and figure of the
// paper's evaluation (Sec. III), producing the same rows and series the
// paper reports. DESIGN.md carries the experiment index; EXPERIMENTS.md
// records paper-vs-measured values.
//
// Two tiers exist for the scaling studies:
//
//   - measured: real goroutine-rank runs of the full distributed GNN at
//     laptop scale, with wall-clock timing and exact traffic counters;
//   - projected: the perfmodel machine description evaluated on workloads
//     whose graph statistics (nodes, halos, neighbors, buffer sizes) are
//     computed exactly from the real partition geometry at 8–2048 ranks.
package experiments

import (
	"fmt"
	"time"

	"meshgnn/internal/comm"
	"meshgnn/internal/field"
	"meshgnn/internal/gnn"
	"meshgnn/internal/graph"
	"meshgnn/internal/mesh"
	"meshgnn/internal/nn"
	"meshgnn/internal/partition"
)

// inputField is the Taylor–Green snapshot used as node data throughout,
// matching the paper's Ŷ_r = X_r setup on the TGV solution.
func inputField() field.TaylorGreen { return field.TaylorGreen{V0: 1, L: 1, Nu: 0.01} }

// buildLocals partitions the box and constructs every rank's sub-graph.
func buildLocals(box *mesh.Box, r int, strat partition.Strategy) ([]*graph.Local, error) {
	part, err := partition.NewCartesian(box, r, strat)
	if err != nil {
		return nil, err
	}
	return graph.BuildAll(box, part)
}

// ---------------------------------------------------------------------------
// Fig. 6 (left): loss vs number of ranks, standard vs consistent NMP.

// Fig6LeftRow is one point of the paper's Fig. 6 (left).
type Fig6LeftRow struct {
	R          int
	Standard   float64 // loss with conventional NMP layers (no halo exchange)
	Consistent float64 // loss with consistent NMP layers
	TargetR1   float64 // reference loss of the unpartitioned graph
}

// Fig6Left evaluates a randomly initialized GNN on a cubic mesh of
// elems³ elements at order p, partitioned over each R in rs, with the
// target set to the input (paper's demonstration task). Consistent rows
// must coincide with the R=1 target; standard rows deviate increasingly
// with R.
func Fig6Left(elems, p int, rs []int, cfg gnn.Config) ([]Fig6LeftRow, error) {
	box, err := mesh.NewBox(elems, elems, elems, p, [3]bool{})
	if err != nil {
		return nil, err
	}
	ref, err := evalLoss(box, 1, partition.Slabs, comm.NeighborAllToAll, cfg)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig6LeftRow, 0, len(rs))
	for _, r := range rs {
		// Blocks handles any power-of-two R on cubic meshes; slabs would
		// run out of elements along one axis at larger R.
		strat := partition.Blocks
		std, err := evalLoss(box, r, strat, comm.NoExchange, cfg)
		if err != nil {
			return nil, fmt.Errorf("R=%d standard: %w", r, err)
		}
		con, err := evalLoss(box, r, strat, comm.NeighborAllToAll, cfg)
		if err != nil {
			return nil, fmt.Errorf("R=%d consistent: %w", r, err)
		}
		rows = append(rows, Fig6LeftRow{R: r, Standard: std, Consistent: con, TargetR1: ref})
	}
	return rows, nil
}

// evalLoss runs one collective forward+loss evaluation.
func evalLoss(box *mesh.Box, r int, strat partition.Strategy, mode comm.ExchangeMode, cfg gnn.Config) (float64, error) {
	locals, err := buildLocals(box, r, strat)
	if err != nil {
		return 0, err
	}
	results, err := comm.RunCollect(r, func(c *comm.Comm) (float64, error) {
		rc, err := gnn.NewRankContext(c, box, locals[c.Rank()], mode)
		if err != nil {
			return 0, err
		}
		model, err := gnn.NewModel(cfg)
		if err != nil {
			return 0, err
		}
		x := field.Sample(inputField(), rc.Graph, 0.25)
		y := model.Forward(rc, x)
		var loss gnn.ConsistentMSE
		return loss.Forward(rc, y, x), nil
	})
	if err != nil {
		return 0, err
	}
	return results[0], nil
}

// ---------------------------------------------------------------------------
// Fig. 6 (right): training curves, R=1 target vs R=8 standard/consistent.

// Fig6RightResult holds the three loss-vs-iteration curves.
type Fig6RightResult struct {
	TargetR1   []float64
	Standard   []float64
	Consistent []float64
	R          int
}

// Fig6Right trains the model for iters iterations on the autoencoding
// task (paper Fig. 6 right: the consistent R-way curve retraces the R=1
// curve; the standard curve deviates).
func Fig6Right(elems, p, r, iters int, cfg gnn.Config, lr float64) (*Fig6RightResult, error) {
	box, err := mesh.NewBox(elems, elems, elems, p, [3]bool{})
	if err != nil {
		return nil, err
	}
	res := &Fig6RightResult{R: r}
	if res.TargetR1, err = trainCurve(box, 1, comm.NeighborAllToAll, cfg, iters, lr); err != nil {
		return nil, err
	}
	if res.Standard, err = trainCurve(box, r, comm.NoExchange, cfg, iters, lr); err != nil {
		return nil, err
	}
	if res.Consistent, err = trainCurve(box, r, comm.NeighborAllToAll, cfg, iters, lr); err != nil {
		return nil, err
	}
	return res, nil
}

func trainCurve(box *mesh.Box, r int, mode comm.ExchangeMode, cfg gnn.Config, iters int, lr float64) ([]float64, error) {
	locals, err := buildLocals(box, r, partition.Blocks)
	if err != nil {
		return nil, err
	}
	curves, err := comm.RunCollect(r, func(c *comm.Comm) ([]float64, error) {
		rc, err := gnn.NewRankContext(c, box, locals[c.Rank()], mode)
		if err != nil {
			return nil, err
		}
		model, err := gnn.NewModel(cfg)
		if err != nil {
			return nil, err
		}
		trainer := gnn.NewTrainer(model, nn.NewAdam(lr))
		x := field.Sample(inputField(), rc.Graph, 0.25)
		curve := make([]float64, iters)
		for it := 0; it < iters; it++ {
			curve[it] = trainer.Step(rc, x, x)
		}
		return curve, nil
	})
	if err != nil {
		return nil, err
	}
	return curves[0], nil
}

// ---------------------------------------------------------------------------
// Table I: model settings.

// Table1Row mirrors one column of the paper's Table I.
type Table1Row struct {
	Name            string
	HiddenDim       int
	MPLayers        int
	MLPHiddenLayers int
	Parameters      int
}

// Table1 returns the small and large configuration rows; the parameter
// counts must equal the paper's 3,979 and 91,459.
func Table1() []Table1Row {
	rows := make([]Table1Row, 0, 2)
	for _, cfg := range []gnn.Config{gnn.SmallConfig(), gnn.LargeConfig()} {
		rows = append(rows, Table1Row{
			Name:            cfg.Name,
			HiddenDim:       cfg.HiddenDim,
			MPLayers:        cfg.MessagePassingLayers,
			MLPHiddenLayers: cfg.MLPHiddenLayers,
			Parameters:      cfg.ParamCount(),
		})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Table II: partitioned sub-graph statistics.

// Table2Row mirrors one row of the paper's Table II.
type Table2Row struct {
	Ranks                      int
	NodesMin, NodesMax         int64
	NodesAvg                   float64
	HaloMin, HaloMax           int64
	HaloAvg                    float64
	NeighborsMin, NeighborsMax int
	NeighborsAvg               float64
	TotalNodes                 int64
}

// Table2 computes per-rank statistics for a fully periodic TGV-style mesh
// at order p with elemsPerRank³ elements of loading per rank, for each
// rank count. Following the paper's footnote, R <= 8 uses slab ("vertical
// chunk") decomposition and larger R uses sub-cube blocks. All statistics
// come from the analytic fast path (validated against materialized
// graphs), which is what makes the 2048-rank / 1.1e9-node row tractable
// on one machine.
func Table2(p, elemsPerRank int, rs []int) ([]Table2Row, error) {
	rows := make([]Table2Row, 0, len(rs))
	for _, r := range rs {
		strat := partition.Blocks
		if r <= 8 {
			strat = partition.Slabs
		}
		box, cart, err := weakScalingMesh(p, elemsPerRank, r, strat)
		if err != nil {
			return nil, err
		}
		sum := partition.Summarize(box, cart.CartesianStats())
		rows = append(rows, Table2Row{
			Ranks:    r,
			NodesMin: sum.NodesMin, NodesMax: sum.NodesMax, NodesAvg: sum.NodesAvg,
			HaloMin: sum.HaloMin, HaloMax: sum.HaloMax, HaloAvg: sum.HaloAvg,
			NeighborsMin: sum.NeighborsMin, NeighborsMax: sum.NeighborsMax,
			NeighborsAvg: sum.NeighborsAvg,
			TotalNodes:   sum.TotalGraphNodes,
		})
	}
	return rows, nil
}

// weakScalingMesh builds the global periodic mesh for a weak-scaling
// configuration: the rank grid (from the strategy) times elemsPerRank
// elements per rank along each split axis.
func weakScalingMesh(p, elemsPerRank, r int, strat partition.Strategy) (*mesh.Box, *partition.Cartesian, error) {
	rx, ry, rz := rankGrid(r, strat)
	box, err := mesh.NewBox(rx*elemsPerRank, ry*elemsPerRank, rz*elemsPerRank, p,
		[3]bool{true, true, true})
	if err != nil {
		return nil, nil, err
	}
	cart, err := partition.NewCartesian(box, r, strat)
	if err != nil {
		return nil, nil, err
	}
	if cart.Rx != rx || cart.Ry != ry || cart.Rz != rz {
		return nil, nil, fmt.Errorf("experiments: partitioner chose %dx%dx%d, expected %dx%dx%d",
			cart.Rx, cart.Ry, cart.Rz, rx, ry, rz)
	}
	return box, cart, nil
}

// rankGrid factorizes r into a process grid per the strategy: slabs are
// r×1×1; blocks use the most cubic factorization.
func rankGrid(r int, strat partition.Strategy) (rx, ry, rz int) {
	if strat == partition.Slabs {
		return r, 1, 1
	}
	best := [3]int{r, 1, 1}
	bestCost := 1 << 62
	for a := 1; a <= r; a++ {
		if r%a != 0 {
			continue
		}
		ra := r / a
		for b := 1; b <= ra; b++ {
			if ra%b != 0 {
				continue
			}
			c := ra / b
			// Cost: spread between largest and smallest factor.
			hi, lo := a, a
			for _, v := range []int{b, c} {
				if v > hi {
					hi = v
				}
				if v < lo {
					lo = v
				}
			}
			if cost := hi - lo; cost < bestCost {
				bestCost = cost
				best = [3]int{a, b, c}
			}
		}
	}
	return best[0], best[1], best[2]
}

// ---------------------------------------------------------------------------
// Shared helpers for the measured tier.

// measuredMesh builds the weak-scaling box and per-rank sub-graphs for a
// measured point (elemsPerRank³ elements per rank; slab grid up to 8
// ranks, blocks beyond), shared by the goroutine and process tiers.
func measuredMesh(p, elemsPerRank, r int) (*mesh.Box, []*graph.Local, error) {
	strat := partition.Blocks
	if r <= 8 {
		strat = partition.Slabs
	}
	rx, ry, rz := rankGrid(r, strat)
	box, err := mesh.NewBox(rx*elemsPerRank, ry*elemsPerRank, rz*elemsPerRank, p,
		[3]bool{true, true, true})
	if err != nil {
		return nil, nil, err
	}
	locals, err := buildLocals(box, r, partition.Auto)
	if err != nil {
		return nil, nil, err
	}
	return box, locals, nil
}

// measuredRankBody is the per-rank measurement script of the measured
// tiers: one warm-up training iteration, then iters timed iterations
// bracketed by barriers. Both the goroutine tier (measuredStep) and the
// process tier (MeasuredProcs) run exactly this body, so their timing and
// traffic accounting cannot drift apart.
func measuredRankBody(c *comm.Comm, box *mesh.Box, l *graph.Local, mode comm.ExchangeMode, cfg gnn.Config, iters int) (elapsed time.Duration, perRun comm.Stats, nodes int64, err error) {
	rc, err := gnn.NewRankContext(c, box, l, mode)
	if err != nil {
		return 0, comm.Stats{}, 0, err
	}
	model, err := gnn.NewModel(cfg)
	if err != nil {
		return 0, comm.Stats{}, 0, err
	}
	trainer := gnn.NewTrainer(model, nn.NewAdam(1e-3))
	x := field.Sample(inputField(), rc.Graph, 0.25)
	// Warm-up iteration excluded from timing.
	trainer.Step(rc, x, x)
	base := c.Stats
	c.Barrier()
	start := time.Now()
	for it := 0; it < iters; it++ {
		trainer.Step(rc, x, x)
	}
	c.Barrier()
	elapsed = time.Since(start)
	perRun = c.Stats
	perRun.MessagesSent -= base.MessagesSent
	perRun.FloatsSent -= base.FloatsSent
	perRun.HaloSeconds -= base.HaloSeconds
	perRun.HaloExposedSeconds -= base.HaloExposedSeconds
	return elapsed, perRun, int64(rc.Graph.NumLocal()), nil
}

// measuredPoint assembles the report row from one rank's measurement.
func measuredPoint(cfg gnn.Config, mode comm.ExchangeMode, r int, nodes int64, secPerIter float64, stats comm.Stats, iters int) MeasuredPoint {
	return MeasuredPoint{
		Model:          cfg.Name,
		Mode:           mode,
		Overlap:        cfg.Overlap,
		Ranks:          r,
		NodesPerRank:   nodes,
		SecPerIter:     secPerIter,
		Throughput:     float64(r) * float64(nodes) / secPerIter,
		Messages:       stats.MessagesSent / int64(iters),
		Floats:         stats.FloatsSent / int64(iters),
		HaloSecPerIter: stats.HaloSeconds / float64(iters),
		ExposedPerIter: stats.HaloExposedSeconds / float64(iters),
	}
}

// MeasuredProcs runs one measured weak-scaling point with procs
// OS-process ranks connected over the socket fabric: the multi-process
// counterpart of one Fig7Measured row. The calling process coordinates as
// rank 0 (workers are re-execs of the same binary; see comm.RunProcs), so
// the returned point carries rank 0's timing and traffic counters. In a
// worker process the training runs collectively but the returned point is
// zero — only the coordinator reports.
func MeasuredProcs(p, elemsPerRank, procs int, cfg gnn.Config, mode comm.ExchangeMode, iters int) (MeasuredPoint, error) {
	box, locals, err := measuredMesh(p, elemsPerRank, procs)
	if err != nil {
		return MeasuredPoint{}, err
	}
	var pt MeasuredPoint
	err = comm.RunProcs(procs, func(c *comm.Comm) error {
		elapsed, stats, nodes, err := measuredRankBody(c, box, locals[c.Rank()], mode, cfg, iters)
		if err != nil || c.Rank() != 0 {
			return err
		}
		pt = measuredPoint(cfg, mode, procs, nodes, elapsed.Seconds()/float64(iters), stats, iters)
		return nil
	})
	return pt, err
}

// measuredStep runs iters full training iterations on r goroutine ranks
// and returns the per-iteration wall time (slowest rank) and rank-0
// traffic counters.
func measuredStep(box *mesh.Box, r int, mode comm.ExchangeMode, cfg gnn.Config, iters int) (secPerIter float64, stats comm.Stats, nodesPerRank int64, err error) {
	locals, err := buildLocals(box, r, partition.Auto)
	if err != nil {
		return 0, comm.Stats{}, 0, err
	}
	type out struct {
		d     time.Duration
		stats comm.Stats
		nodes int64
	}
	results, err := comm.RunCollect(r, func(c *comm.Comm) (out, error) {
		elapsed, perRun, nodes, err := measuredRankBody(c, box, locals[c.Rank()], mode, cfg, iters)
		if err != nil {
			return out{}, err
		}
		return out{d: elapsed, stats: perRun, nodes: nodes}, nil
	})
	if err != nil {
		return 0, comm.Stats{}, 0, err
	}
	var maxD time.Duration
	for _, o := range results {
		if o.d > maxD {
			maxD = o.d
		}
	}
	return maxD.Seconds() / float64(iters), results[0].stats, results[0].nodes, nil
}
