package experiments

import (
	"math"
	"math/rand"
	"sort"
)

// LatencyRecorder accumulates a request-latency distribution in O(1)
// memory: exact streaming moments (count, sum, min, max) plus a
// fixed-capacity uniform reservoir (Vitter's algorithm R) the quantile
// estimates are read from. A multi-minute load run records millions of
// samples into the same flat footprint a ten-second run uses — the
// unbounded per-request sample slice it replaces grew without limit.
//
// The reservoir is seeded deterministically, so identical input streams
// yield identical quantile estimates run over run; with no more samples
// than the capacity, quantiles are exact (every sample is retained).
// Tail maxima are exact at any scale — Max is streamed, not sampled —
// which is why load reports quote p50/p99 AND max.
//
// A recorder is single-goroutine, like the measurement loops that feed
// it; concurrent load generators record into per-worker recorders and
// Merge them afterwards.
type LatencyRecorder struct {
	count     int64
	sum       float64
	min, max  float64
	reservoir []float64
	rng       *rand.Rand
}

// DefaultLatencySamples is the reservoir capacity cmd/serve and
// cmd/bench use: 4096 samples bound the p99 estimate's sampling error
// well under the scheduler noise of any real run, in 32 KiB.
const DefaultLatencySamples = 4096

// NewLatencyRecorder returns a recorder keeping at most capacity
// samples (<= 0 means DefaultLatencySamples).
func NewLatencyRecorder(capacity int) *LatencyRecorder {
	if capacity <= 0 {
		capacity = DefaultLatencySamples
	}
	return &LatencyRecorder{
		min:       math.Inf(1),
		reservoir: make([]float64, 0, capacity),
		rng:       rand.New(rand.NewSource(1)),
	}
}

// Record adds one sample (in nanoseconds, by convention).
func (r *LatencyRecorder) Record(ns float64) {
	r.count++
	r.sum += ns
	if ns < r.min {
		r.min = ns
	}
	if ns > r.max {
		r.max = ns
	}
	if len(r.reservoir) < cap(r.reservoir) {
		r.reservoir = append(r.reservoir, ns)
		return
	}
	// Algorithm R: sample i (1-based r.count) replaces a reservoir slot
	// with probability cap/count, keeping the reservoir uniform over the
	// stream prefix seen so far.
	if j := r.rng.Int63n(r.count); j < int64(cap(r.reservoir)) {
		r.reservoir[j] = ns
	}
}

// Merge folds other's samples into r (streaming moments exactly; the
// reservoirs are concatenated and re-subsampled uniformly when the
// combined set exceeds r's capacity). other is left untouched.
func (r *LatencyRecorder) Merge(other *LatencyRecorder) {
	if other == nil || other.count == 0 {
		return
	}
	r.count += other.count
	r.sum += other.sum
	if other.min < r.min {
		r.min = other.min
	}
	if other.max > r.max {
		r.max = other.max
	}
	combined := append(append([]float64(nil), r.reservoir...), other.reservoir...)
	if len(combined) > cap(r.reservoir) {
		// Weight both sides equally per retained sample: shuffle the
		// concatenation deterministically, keep the first cap entries.
		r.rng.Shuffle(len(combined), func(i, j int) {
			combined[i], combined[j] = combined[j], combined[i]
		})
		combined = combined[:cap(r.reservoir)]
	}
	r.reservoir = append(r.reservoir[:0], combined...)
}

// Count returns how many samples were recorded.
func (r *LatencyRecorder) Count() int64 { return r.count }

// Mean returns the exact mean of all recorded samples (0 when empty).
func (r *LatencyRecorder) Mean() float64 {
	if r.count == 0 {
		return 0
	}
	return r.sum / float64(r.count)
}

// Min and Max return the exact extremes (0 when empty).
func (r *LatencyRecorder) Min() float64 {
	if r.count == 0 {
		return 0
	}
	return r.min
}

func (r *LatencyRecorder) Max() float64 { return r.max }

// Quantile estimates the p-th percentile (0 < p <= 100) from the
// reservoir — exact while the sample count is within capacity.
func (r *LatencyRecorder) Quantile(p float64) float64 {
	if len(r.reservoir) == 0 {
		return 0
	}
	sorted := append([]float64(nil), r.reservoir...)
	sort.Float64s(sorted)
	return percentile(sorted, p)
}
