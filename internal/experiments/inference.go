package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"meshgnn/internal/comm"
	"meshgnn/internal/field"
	"meshgnn/internal/gnn"
	"meshgnn/internal/graph"
	"meshgnn/internal/mesh"
)

// ServingPoint is one measured serving point: the training forward vs
// compiled-engine step comparison plus the request-level latency profile,
// as reported by cmd/serve and cmd/bench's inference tier.
type ServingPoint struct {
	Model    string `json:"model"`
	Ranks    int    `json:"ranks"`
	ModeName string `json:"mode"`
	Overlap  bool   `json:"overlap"`
	Requests int    `json:"requests"`

	// TrainForwardNs is the per-call wall time of the training
	// Model.Forward (gradient caches, backward-ready arena epoch);
	// InferNs is the compiled engine's Predict on the same snapshot —
	// bitwise the same prediction, so Speedup = TrainForwardNs/InferNs
	// is a pure implementation win.
	TrainForwardNs float64 `json:"train_forward_ns_per_step"`
	InferNs        float64 `json:"infer_ns_per_step"`
	Speedup        float64 `json:"speedup"`

	// Request-level serving statistics over the engine (rank-0 wall
	// clock; requests are collective, so this is the system latency).
	ThroughputReqSec float64 `json:"throughput_req_per_sec"`
	LatencyMeanNs    float64 `json:"latency_mean_ns"`
	LatencyP50Ns     float64 `json:"latency_p50_ns"`
	LatencyP99Ns     float64 `json:"latency_p99_ns"`

	// RolloutSteps/RolloutNs time one multi-step autoregressive rollout
	// through the engine (0 steps skips it).
	RolloutSteps int     `json:"rollout_steps,omitempty"`
	RolloutNs    float64 `json:"rollout_ns,omitempty"`

	// ParityDiffBits counts prediction values whose bit patterns differ
	// between Model.Forward and the engine across the verification
	// passes — the acceptance criterion requires 0.
	ParityDiffBits int `json:"parity_diff_bits"`
}

// MeasureInferenceRank is the collective rank body behind cmd/serve: it
// builds the rank context, the seeded training model, and the compiled
// engine, verifies bitwise parity, then times the training forward, the
// engine step (with per-request latencies), and an optional rollout. All
// ranks must call it together (any transport); the returned point
// carries rank-0 wall clock and is meaningful on every rank, but only
// the coordinator usually reports it.
func MeasureInferenceRank(c *comm.Comm, box *mesh.Box, l *graph.Local, mode comm.ExchangeMode,
	cfg gnn.Config, requests, rolloutSteps int) (ServingPoint, error) {
	rc, err := gnn.NewRankContext(c, box, l, mode)
	if err != nil {
		return ServingPoint{}, err
	}
	model, err := gnn.NewModel(cfg)
	if err != nil {
		return ServingPoint{}, err
	}
	eng, err := gnn.NewInference(model)
	if err != nil {
		return ServingPoint{}, err
	}
	x := field.Sample(inputField(), rc.Graph, 0.25)

	pt := ServingPoint{
		Model: cfg.Name, Ranks: c.Size(), ModeName: fmt.Sprint(mode),
		Overlap: cfg.Overlap, Requests: requests, RolloutSteps: rolloutSteps,
	}

	// Parity: the engine must reproduce the training forward bit for bit
	// (twice, to cover the bound/replay path and the static-edge cache).
	for pass := 0; pass < 2; pass++ {
		yM := model.Forward(rc, x).Clone()
		yE := eng.Predict(rc, x)
		for i := range yM.Data {
			if math.Float64bits(yM.Data[i]) != math.Float64bits(yE.Data[i]) {
				pt.ParityDiffBits++
			}
		}
	}

	// Training forward timing (arena already recorded by the parity
	// passes above).
	c.Barrier()
	start := time.Now()
	for i := 0; i < requests; i++ {
		model.Forward(rc, x)
	}
	c.Barrier()
	pt.TrainForwardNs = float64(time.Since(start).Nanoseconds()) / float64(requests)

	// Engine serving: per-request latency profile.
	lat := make([]float64, requests)
	c.Barrier()
	start = time.Now()
	for i := 0; i < requests; i++ {
		t0 := time.Now()
		eng.Predict(rc, x)
		lat[i] = float64(time.Since(t0).Nanoseconds())
	}
	c.Barrier()
	elapsed := time.Since(start)
	pt.InferNs = float64(elapsed.Nanoseconds()) / float64(requests)
	if pt.InferNs > 0 {
		pt.Speedup = pt.TrainForwardNs / pt.InferNs
		pt.ThroughputReqSec = 1e9 / pt.InferNs
	}
	var sum float64
	for _, v := range lat {
		sum += v
	}
	pt.LatencyMeanNs = sum / float64(requests)
	sort.Float64s(lat)
	pt.LatencyP50Ns = percentile(lat, 50)
	pt.LatencyP99Ns = percentile(lat, 99)

	if rolloutSteps > 0 && cfg.InputNodeFeatures == cfg.OutputNodeFeatures {
		c.Barrier()
		start = time.Now()
		eng.Rollout(rc, x, rolloutSteps)
		c.Barrier()
		pt.RolloutNs = float64(time.Since(start).Nanoseconds())
	}
	return pt, nil
}

// percentile returns the p-th percentile of sorted (nearest-rank method).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	k := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if k < 0 {
		k = 0
	}
	if k >= len(sorted) {
		k = len(sorted) - 1
	}
	return sorted[k]
}
