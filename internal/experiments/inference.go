package experiments

import (
	"fmt"
	"math"
	"time"

	"meshgnn/internal/comm"
	"meshgnn/internal/field"
	"meshgnn/internal/gnn"
	"meshgnn/internal/graph"
	"meshgnn/internal/mesh"
	"meshgnn/internal/tensor"
)

// ServingPoint is one measured serving point: the training forward vs
// compiled-engine step comparison plus the request-level latency profile,
// as reported by cmd/serve and cmd/bench's inference tier.
type ServingPoint struct {
	Model    string `json:"model"`
	Ranks    int    `json:"ranks"`
	ModeName string `json:"mode"`
	Overlap  bool   `json:"overlap"`
	Requests int    `json:"requests"`

	// TrainForwardNs is the per-call wall time of the training
	// Model.Forward (gradient caches, backward-ready arena epoch);
	// InferNs is the compiled engine's Predict on the same snapshot —
	// bitwise the same prediction, so Speedup = TrainForwardNs/InferNs
	// is a pure implementation win.
	TrainForwardNs float64 `json:"train_forward_ns_per_step"`
	InferNs        float64 `json:"infer_ns_per_step"`
	Speedup        float64 `json:"speedup"`

	// Request-level serving statistics over the engine (rank-0 wall
	// clock; requests are collective, so this is the system latency).
	// Quantiles come from a fixed-size reservoir (LatencyRecorder); the
	// max is exact at any stream length.
	ThroughputReqSec float64 `json:"throughput_req_per_sec"`
	LatencyMeanNs    float64 `json:"latency_mean_ns"`
	LatencyP50Ns     float64 `json:"latency_p50_ns"`
	LatencyP99Ns     float64 `json:"latency_p99_ns"`
	LatencyMaxNs     float64 `json:"latency_max_ns"`

	// RolloutSteps/RolloutNs time one multi-step autoregressive rollout
	// through the engine (0 steps skips it).
	RolloutSteps int     `json:"rollout_steps,omitempty"`
	RolloutNs    float64 `json:"rollout_ns,omitempty"`

	// ParityDiffBits counts prediction values whose bit patterns differ
	// between Model.Forward and the engine across the verification
	// passes — for Float64 engines the acceptance criterion requires 0.
	ParityDiffBits int `json:"parity_diff_bits"`

	// Precision is the engine's numeric representation ("float64" or
	// "float32").
	Precision string `json:"precision"`
	// ParityMaxRel is the Float32 engine's maximum relative error
	// |y32−y64|/(1+|y64|) against the float64 training forward across the
	// verification passes and the first F32RolloutGateSteps states of the
	// rollout trajectory. The acceptance gate is F32Tolerance; always 0
	// for Float64 engines (which are gated on ParityDiffBits instead).
	ParityMaxRel float64 `json:"parity_max_rel,omitempty"`
	// RolloutMaxRel is the same relative error over the *full* rollout
	// trajectory, recorded but not gated: an autoregressive map amplifies
	// any perturbation — a single-ulp difference included — exponentially
	// per step (an untrained random model separates by roughly an order
	// of magnitude every 1–2 steps), so deep-trajectory divergence
	// measures the model's sensitivity, not kernel correctness.
	RolloutMaxRel float64 `json:"rollout_max_rel,omitempty"`
}

// F32Tolerance is the acceptance bound on ParityMaxRel for Float32
// serving engines: single-precision rounding through the small/large
// architectures stays orders of magnitude below it (~1e-5 single-shot,
// ~1e-4 over a ten-step rollout), while a broken kernel or a mixed-up
// exchange diverges far past it.
const F32Tolerance = 1e-2

// F32RolloutGateSteps bounds how deep into the rollout trajectory the
// F32Tolerance gate applies. Within this prefix, single-precision
// rounding has compounded only a few times and stays well under the
// gate; past it the autoregressive amplification of the (untrained)
// model dominates and the divergence no longer discriminates a correct
// kernel from a broken one — it is still recorded in RolloutMaxRel.
const F32RolloutGateSteps = 3

// MeasureInferenceRank is the collective rank body behind cmd/serve: it
// builds the rank context, the seeded training model, and the compiled
// engine, verifies bitwise parity, then times the training forward, the
// engine step (with per-request latencies), and an optional rollout. All
// ranks must call it together (any transport); the returned point
// carries rank-0 wall clock and is meaningful on every rank, but only
// the coordinator usually reports it.
func MeasureInferenceRank(c *comm.Comm, box *mesh.Box, l *graph.Local, mode comm.ExchangeMode,
	cfg gnn.Config, requests, rolloutSteps int) (ServingPoint, error) {
	rc, err := gnn.NewRankContext(c, box, l, mode)
	if err != nil {
		return ServingPoint{}, err
	}
	model, err := gnn.NewModel(cfg)
	if err != nil {
		return ServingPoint{}, err
	}
	eng, err := gnn.NewInference(model)
	if err != nil {
		return ServingPoint{}, err
	}
	x := field.Sample(inputField(), rc.Graph, 0.25)

	pt := ServingPoint{
		Model: cfg.Name, Ranks: c.Size(), ModeName: fmt.Sprint(mode),
		Overlap: cfg.Overlap, Requests: requests, RolloutSteps: rolloutSteps,
		Precision: "float64",
	}
	f32 := cfg.Precision == gnn.Float32
	if f32 {
		pt.Precision = "float32"
	}

	// Parity (twice, to cover the bound/replay path and the static-edge
	// cache): a Float64 engine must reproduce the training forward bit
	// for bit; a Float32 engine is gated on relative error against it.
	relTo := func(y64, yE *tensor.Matrix) {
		for i := range y64.Data {
			d := math.Abs(yE.Data[i] - y64.Data[i])
			if r := d / (1 + math.Abs(y64.Data[i])); r > pt.ParityMaxRel {
				pt.ParityMaxRel = r
			}
		}
	}
	for pass := 0; pass < 2; pass++ {
		yM := model.Forward(rc, x).Clone()
		yE := eng.Predict(rc, x)
		if f32 {
			relTo(yM, yE)
			continue
		}
		for i := range yM.Data {
			if math.Float64bits(yM.Data[i]) != math.Float64bits(yE.Data[i]) {
				pt.ParityDiffBits++
			}
		}
	}
	// The f32 gate also covers the first steps of a rollout —
	// autoregressive drift is where a marginally-wrong kernel compounds
	// into visibility. Deeper states are recorded (RolloutMaxRel) but not
	// gated: past a few steps the model's own exponential amplification
	// of *any* perturbation dominates the comparison.
	if f32 && rolloutSteps > 0 && cfg.InputNodeFeatures == cfg.OutputNodeFeatures {
		tr64 := gnn.Rollout(model, rc, x, rolloutSteps)
		tr32 := eng.Rollout(rc, x, rolloutSteps)
		gated := pt.ParityMaxRel
		for s := range tr64 {
			relTo(tr64[s], tr32[s])
			if s <= F32RolloutGateSteps && pt.ParityMaxRel > gated {
				gated = pt.ParityMaxRel
			}
		}
		pt.RolloutMaxRel = pt.ParityMaxRel
		pt.ParityMaxRel = gated
	}

	// Training forward timing (arena already recorded by the parity
	// passes above).
	c.Barrier()
	start := time.Now()
	for i := 0; i < requests; i++ {
		model.Forward(rc, x)
	}
	c.Barrier()
	pt.TrainForwardNs = float64(time.Since(start).Nanoseconds()) / float64(requests)

	// Engine serving: per-request latency profile into a flat-memory
	// reservoir recorder — the request count no longer sizes anything.
	rec := NewLatencyRecorder(DefaultLatencySamples)
	c.Barrier()
	start = time.Now()
	for i := 0; i < requests; i++ {
		t0 := time.Now()
		eng.Predict(rc, x)
		rec.Record(float64(time.Since(t0).Nanoseconds()))
	}
	c.Barrier()
	elapsed := time.Since(start)
	pt.InferNs = float64(elapsed.Nanoseconds()) / float64(requests)
	if pt.InferNs > 0 {
		pt.Speedup = pt.TrainForwardNs / pt.InferNs
		pt.ThroughputReqSec = 1e9 / pt.InferNs
	}
	pt.LatencyMeanNs = rec.Mean()
	pt.LatencyP50Ns = rec.Quantile(50)
	pt.LatencyP99Ns = rec.Quantile(99)
	pt.LatencyMaxNs = rec.Max()

	if rolloutSteps > 0 && cfg.InputNodeFeatures == cfg.OutputNodeFeatures {
		c.Barrier()
		start = time.Now()
		eng.Rollout(rc, x, rolloutSteps)
		c.Barrier()
		pt.RolloutNs = float64(time.Since(start).Nanoseconds())
	}
	return pt, nil
}

// percentile returns the p-th percentile of sorted (nearest-rank method).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	k := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if k < 0 {
		k = 0
	}
	if k >= len(sorted) {
		k = len(sorted) - 1
	}
	return sorted[k]
}
