package experiments

import (
	"math"
	"sort"
	"strings"
	"testing"

	"meshgnn/internal/comm"
	"meshgnn/internal/gnn"
	"meshgnn/internal/perfmodel"
)

// fastConfig shrinks the model so experiment smoke tests stay quick.
func fastConfig() gnn.Config {
	cfg := gnn.SmallConfig()
	cfg.MessagePassingLayers = 2
	cfg.MLPHiddenLayers = 1
	return cfg
}

func TestFig6LeftShape(t *testing.T) {
	rows, err := Fig6Left(4, 1, []int{2, 4, 8}, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Consistent loss must coincide with the R=1 target.
		if rel := math.Abs(r.Consistent-r.TargetR1) / (1 + r.TargetR1); rel > 1e-12 {
			t.Fatalf("R=%d: consistent loss deviates rel %g", r.R, rel)
		}
		// Standard loss must deviate for every partitioned run. (The
		// roughly-linear growth of the deviation with R that the paper
		// plots emerges only at larger mesh sizes; the full-size run is
		// exercised by cmd/consistency and the Fig6Left bench.)
		if dev := math.Abs(r.Standard - r.TargetR1); dev <= 1e-12 {
			t.Fatalf("R=%d: standard loss unexpectedly consistent", r.R)
		}
	}
}

func TestFig6RightCurves(t *testing.T) {
	res, err := Fig6Right(4, 1, 4, 6, fastConfig(), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TargetR1) != 6 || len(res.Standard) != 6 || len(res.Consistent) != 6 {
		t.Fatal("curve lengths wrong")
	}
	for it := range res.TargetR1 {
		if rel := math.Abs(res.Consistent[it]-res.TargetR1[it]) / (1 + res.TargetR1[it]); rel > 1e-6 {
			t.Fatalf("iter %d: consistent training deviates rel %g", it, rel)
		}
	}
	// Loss decreases.
	if res.TargetR1[5] >= res.TargetR1[0] {
		t.Fatalf("training did not reduce loss: %v -> %v", res.TargetR1[0], res.TargetR1[5])
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Parameters != 3979 || rows[1].Parameters != 91459 {
		t.Fatalf("parameter counts %d/%d, want 3979/91459", rows[0].Parameters, rows[1].Parameters)
	}
	if rows[0].HiddenDim != 8 || rows[1].HiddenDim != 32 {
		t.Fatal("hidden dims wrong")
	}
}

// Table II at the paper's production scale: 2048 ranks, p=5, 16³ elements
// per rank, ~1.1e9 total nodes — entirely via the analytic path.
func TestTable2PaperScale(t *testing.T) {
	rows, err := Table2(5, 16, []int{8, 64, 512, 2048})
	if err != nil {
		t.Fatal(err)
	}
	// R=8 row must match the paper exactly (518k, 12.8k, 2).
	r8 := rows[0]
	if r8.NodesAvg != 518400 || r8.HaloAvg != 12800 || r8.NeighborsAvg != 2 {
		t.Fatalf("R=8 row: %+v", r8)
	}
	// Total graph nodes must reach ~1.07e9 at 2048 ranks (paper: 1.105e9).
	r2048 := rows[3]
	if r2048.TotalNodes < 1e9 || r2048.TotalNodes > 1.2e9 {
		t.Fatalf("R=2048 total nodes %d, want ~1.1e9", r2048.TotalNodes)
	}
	// Loading stays balanced and halos bounded for all rows.
	for _, r := range rows {
		if r.NodesMin != r.NodesMax {
			t.Fatalf("R=%d: unbalanced loading %d..%d", r.Ranks, r.NodesMin, r.NodesMax)
		}
		if r.HaloAvg <= 0 || r.HaloAvg > 80e3 {
			t.Fatalf("R=%d: halo average %v out of range", r.Ranks, r.HaloAvg)
		}
		if r.NeighborsMax > 26 {
			t.Fatalf("R=%d: %d neighbors", r.Ranks, r.NeighborsMax)
		}
	}
}

func TestFig7FrontierShape(t *testing.T) {
	pts, err := Fig7Frontier(perfmodel.Frontier(), 5,
		[]int{8, 64, 512, 2048},
		[]Loading{Loading512k()},
		[]gnn.Config{gnn.SmallConfig(), gnn.LargeConfig()},
		DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	byKey := func(model string, mode comm.ExchangeMode, r int) ScalingPoint {
		for _, p := range pts {
			if p.Model == model && p.Mode == mode && p.Ranks == r {
				return p
			}
		}
		t.Fatalf("missing point %s/%v/%d", model, mode, r)
		return ScalingPoint{}
	}
	// Paper findings encoded as assertions:
	// (1) no-exchange keeps >90% efficiency at 2048 ranks, 512k loading.
	if e := byKey("large", comm.NoExchange, 2048).Efficiency; e < 90 {
		t.Fatalf("no-exchange efficiency %v, want > 90", e)
	}
	// (2) N-A2A stays within a modest penalty (>70% efficiency).
	if e := byKey("large", comm.NeighborAllToAll, 2048).Efficiency; e < 70 {
		t.Fatalf("N-A2A efficiency %v, want > 70", e)
	}
	// (3) standard A2A collapses at scale.
	if e := byKey("large", comm.AllToAllMode, 2048).Efficiency; e > 50 {
		t.Fatalf("A2A efficiency %v, want collapse", e)
	}
	// (4) Fig. 8: large-model N-A2A relative throughput > 0.9 at 1024-.
	if rel := byKey("large", comm.NeighborAllToAll, 64).Relative; rel < 0.9 {
		t.Fatalf("N-A2A relative %v at 64 ranks, want > 0.9", rel)
	}
	// (5) total graph nodes reach O(1e9).
	if n := byKey("small", comm.NoExchange, 2048).TotalNodes; n < 1e9 {
		t.Fatalf("total nodes %d", n)
	}
}

func TestFig7MeasuredSmoke(t *testing.T) {
	pts, err := Fig7Measured(2, 2, []int{1, 2, 4}, fastConfig(),
		[]comm.ExchangeMode{comm.AllToAllMode, comm.NeighborAllToAll}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 3 rank counts × (none + 2 modes).
	if len(pts) != 9 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.SecPerIter <= 0 || p.Throughput <= 0 {
			t.Fatalf("non-positive timing: %+v", p)
		}
		if p.Mode == comm.NoExchange && p.Relative != 1 {
			t.Fatalf("baseline relative %v", p.Relative)
		}
	}
	// At R=4, A2A must send at least as many messages as N-A2A.
	var a2a, na2a MeasuredPoint
	for _, p := range pts {
		if p.Ranks == 4 && p.Mode == comm.AllToAllMode {
			a2a = p
		}
		if p.Ranks == 4 && p.Mode == comm.NeighborAllToAll {
			na2a = p
		}
	}
	if a2a.Messages < na2a.Messages {
		t.Fatalf("A2A msgs %d < N-A2A msgs %d", a2a.Messages, na2a.Messages)
	}
}

func TestRenderersProduceTables(t *testing.T) {
	var sb strings.Builder
	rows, err := Fig6Left(2, 1, []int{2}, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	RenderFig6Left(&sb, rows)
	RenderTable1(&sb, Table1())
	t2, err := Table2(2, 2, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	RenderTable2(&sb, t2)
	pts, err := Fig7Frontier(perfmodel.Frontier(), 5, []int{8, 64}, []Loading{Loading512k()},
		[]gnn.Config{gnn.SmallConfig()}, DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	RenderFig7(&sb, pts)
	out := sb.String()
	for _, want := range []string{"| R |", "| GNN |", "| ranks |", "512k nodes per sub-graph"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in rendered output", want)
		}
	}
}

func TestRankGrid(t *testing.T) {
	sort3 := func(a, b, c int) [3]int {
		v := []int{a, b, c}
		sort.Ints(v)
		return [3]int{v[0], v[1], v[2]}
	}
	cases := []struct {
		r       int
		strat   string
		factors [3]int // sorted
	}{
		{8, "slabs", [3]int{1, 1, 8}},
		{64, "blocks", [3]int{4, 4, 4}},
		{512, "blocks", [3]int{8, 8, 8}},
		{2048, "blocks", [3]int{8, 16, 16}},
	}
	for _, c := range cases {
		var rx, ry, rz int
		if c.strat == "slabs" {
			rx, ry, rz = rankGrid(c.r, 0) // partition.Slabs == 0
		} else {
			rx, ry, rz = rankGrid(c.r, 2) // partition.Blocks == 2
		}
		if rx*ry*rz != c.r {
			t.Fatalf("rankGrid(%d) product %d", c.r, rx*ry*rz)
		}
		if got := sort3(rx, ry, rz); got != c.factors {
			t.Fatalf("rankGrid(%d,%s) = %v, want factors %v", c.r, c.strat, got, c.factors)
		}
	}
}
