package experiments

import (
	"fmt"

	"meshgnn/internal/comm"
	"meshgnn/internal/gnn"
	"meshgnn/internal/mesh"
	"meshgnn/internal/partition"
	"meshgnn/internal/perfmodel"
)

// Loading names the two per-rank graph sizes of the paper's weak-scaling
// study (nominally 256k and 512k local nodes per rank at p=5).
type Loading struct {
	Name string
	// Ex, Ey, Ez are elements per rank along each axis.
	Ex, Ey, Ez int
}

// Loading512k is 16³ elements per rank at p=5: 518k local nodes,
// matching the paper's "512k" rows (Table II reports 518k–540k).
func Loading512k() Loading { return Loading{Name: "512k", Ex: 16, Ey: 16, Ez: 16} }

// Loading256k is 13×13×12 elements per rank at p=5: ~259k local nodes.
func Loading256k() Loading { return Loading{Name: "256k", Ex: 13, Ey: 13, Ez: 12} }

// ScalingPoint is one point of the paper's Fig. 7 / Fig. 8 series.
type ScalingPoint struct {
	Model      string
	Loading    string
	Mode       comm.ExchangeMode
	Ranks      int
	TotalNodes int64
	// Throughput is total graph nodes processed per second over one
	// training iteration (Fig. 7, top).
	Throughput float64
	// Efficiency is the weak-scaling efficiency in percent relative to
	// the smallest rank count in the sweep (Fig. 7, bottom).
	Efficiency float64
	// Relative is the throughput normalized by the no-exchange
	// (inconsistent) model at the same configuration (Fig. 8).
	Relative float64
}

// scalingWorkload derives the perfmodel workload for a weak-scaling
// configuration from the exact partition statistics.
func scalingWorkload(p int, load Loading, r int, cfg gnn.Config) (perfmodel.Workload, int64, error) {
	strat := partition.Blocks
	if r <= 8 {
		strat = partition.Slabs
	}
	rx, ry, rz := rankGrid(r, strat)
	box, err := mesh.NewBox(rx*load.Ex, ry*load.Ey, rz*load.Ez, p, [3]bool{true, true, true})
	if err != nil {
		return perfmodel.Workload{}, 0, err
	}
	cart, err := partition.NewCartesian(box, r, strat)
	if err != nil {
		return perfmodel.Workload{}, 0, err
	}
	stats := cart.CartesianStats()
	edges := cart.CartesianEdgeCounts()
	sum := partition.Summarize(box, stats)
	var maxEdges int64
	for _, e := range edges {
		if e > maxEdges {
			maxEdges = e
		}
	}
	// Uniform A2A buffer rows: the largest per-neighbor share of halo
	// nodes; bounded by the largest full-face exchange.
	maxSend := int64(0)
	for _, st := range stats {
		if st.Neighbors > 0 {
			if v := st.HaloNodes / int64(st.Neighbors); v > maxSend {
				if v > maxSend {
					maxSend = v
				}
			}
		}
	}
	nodesPerRank := int64(sum.NodesAvg)
	edgesPerRank := edges[0]
	w := perfmodel.Workload{
		Ranks:        r,
		NodesPerRank: nodesPerRank,
		EdgesPerRank: edgesPerRank,
		HaloPerRank:  int64(sum.HaloAvg),
		Neighbors:    int(sum.NeighborsAvg + 0.5),
		MaxSendCount: maxSend,
		Hidden:       cfg.HiddenDim,
		MPLayers:     cfg.MessagePassingLayers,
		Params:       cfg.ParamCount(),
		FlopsPerIter: perfmodel.ModelFlops(cfg, nodesPerRank, edgesPerRank),
	}
	return w, box.NumNodes(), nil
}

// Fig7Frontier projects the weak-scaling study onto the machine model:
// for each model size, loading, and exchange mode, it reports total
// throughput and weak-scaling efficiency across the rank counts —
// regenerating the four panels of the paper's Fig. 7. Fig. 8's relative
// throughput is filled simultaneously.
func Fig7Frontier(m perfmodel.Machine, p int, rs []int, loadings []Loading, cfgs []gnn.Config, modes []comm.ExchangeMode) ([]ScalingPoint, error) {
	var out []ScalingPoint
	for _, cfg := range cfgs {
		for _, load := range loadings {
			// Baselines for efficiency (first R) and relative (none mode).
			baseTP := make(map[comm.ExchangeMode]float64)
			noneTP := make(map[int]float64)
			for _, r := range rs {
				w, _, err := scalingWorkload(p, load, r, cfg)
				if err != nil {
					return nil, err
				}
				noneTP[r] = m.Throughput(w, comm.NoExchange)
			}
			for _, mode := range modes {
				for i, r := range rs {
					w, total, err := scalingWorkload(p, load, r, cfg)
					if err != nil {
						return nil, fmt.Errorf("%s/%s/%v R=%d: %w", cfg.Name, load.Name, mode, r, err)
					}
					tp := m.Throughput(w, mode)
					if i == 0 {
						baseTP[mode] = tp / float64(r)
					}
					out = append(out, ScalingPoint{
						Model:      cfg.Name,
						Loading:    load.Name,
						Mode:       mode,
						Ranks:      r,
						TotalNodes: total,
						Throughput: tp,
						Efficiency: 100 * tp / (float64(r) * baseTP[mode]),
						Relative:   tp / noneTP[r],
					})
				}
			}
		}
	}
	return out, nil
}

// MeasuredPoint is one point of the measured (goroutine-rank) tier.
type MeasuredPoint struct {
	Model string
	Mode  comm.ExchangeMode
	// Overlap records whether the phased (overlapped) NMP pipeline was
	// active for this point.
	Overlap      bool
	Ranks        int
	NodesPerRank int64
	SecPerIter   float64
	// Throughput is total nodes/sec across ranks. On a single host the
	// ranks time-share cores, so absolute weak scaling is not
	// meaningful; the Relative column (vs no-exchange at the same R) is.
	Throughput float64
	Relative   float64
	// Messages and Floats are rank-0 sends per iteration, the exact
	// traffic the perfmodel charges for.
	Messages int64
	Floats   int64
	// HaloSecPerIter is rank 0's wall time inside halo exchanges per
	// iteration; ExposedPerIter is the subset spent blocked on messages
	// that had not yet arrived (the communication cost not hidden behind
	// compute — the quantity the overlapped pipeline shrinks).
	HaloSecPerIter float64
	ExposedPerIter float64
}

// Fig7Measured runs the real distributed trainer on goroutine ranks over
// a small weak-scaling sweep, recording wall time and exact traffic. The
// relative-throughput column reproduces Fig. 8's comparison directly from
// measurements; the traffic counters validate the perfmodel's message
// accounting.
func Fig7Measured(p, elemsPerRank int, rs []int, cfg gnn.Config, modes []comm.ExchangeMode, iters int) ([]MeasuredPoint, error) {
	var out []MeasuredPoint
	for _, r := range rs {
		box, _, err := measuredMesh(p, elemsPerRank, r)
		if err != nil {
			return nil, err
		}
		var noneTP float64
		for _, mode := range append([]comm.ExchangeMode{comm.NoExchange}, modes...) {
			sec, stats, nodes, err := measuredStep(box, r, mode, cfg, iters)
			if err != nil {
				return nil, fmt.Errorf("R=%d mode %v: %w", r, mode, err)
			}
			pt := measuredPoint(cfg, mode, r, nodes, sec, stats, iters)
			if mode == comm.NoExchange {
				noneTP = pt.Throughput
			}
			pt.Relative = pt.Throughput / noneTP
			out = append(out, pt)
		}
	}
	return out, nil
}
