package experiments

import (
	"strings"
	"testing"

	"meshgnn/internal/comm"
	"meshgnn/internal/gnn"
	"meshgnn/internal/perfmodel"
)

func TestStrongScalingShape(t *testing.T) {
	pts, err := StrongScaling(perfmodel.Frontier(), 5, 32, []int{8, 64, 512},
		gnn.LargeConfig(), DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 9 {
		t.Fatalf("%d points", len(pts))
	}
	get := func(mode comm.ExchangeMode, r int) StrongScalingPoint {
		for _, p := range pts {
			if p.Mode == mode && p.Ranks == r {
				return p
			}
		}
		t.Fatalf("missing %v/%d", mode, r)
		return StrongScalingPoint{}
	}
	// Iteration time must shrink with R for the baseline.
	if get(comm.NoExchange, 512).IterTime >= get(comm.NoExchange, 8).IterTime {
		t.Fatal("strong scaling did not reduce iteration time")
	}
	// Baseline speedup at R0 is 1 by definition.
	if s := get(comm.NoExchange, 8).Speedup; s != 1 {
		t.Fatalf("base speedup %v", s)
	}
	// Strong-scaling efficiency degrades faster for A2A than N-A2A.
	if get(comm.AllToAllMode, 512).Efficiency >= get(comm.NeighborAllToAll, 512).Efficiency {
		t.Fatal("A2A should lose efficiency faster than N-A2A under strong scaling")
	}
}

func TestInferenceThroughputShape(t *testing.T) {
	pts, err := InferenceThroughput(perfmodel.Frontier(), 5, Loading512k(),
		[]int{8, 512, 2048}, gnn.LargeConfig(), DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Throughput <= 0 {
			t.Fatalf("non-positive throughput: %+v", p)
		}
		if p.Mode == comm.NoExchange && p.Relative != 1 {
			t.Fatalf("baseline relative %v", p.Relative)
		}
		if p.Relative > 1.0001 {
			t.Fatalf("exchange mode faster than baseline: %+v", p)
		}
	}
	// A2A at 2048 ranks must be markedly slower than N-A2A.
	var a2a, na2a float64
	for _, p := range pts {
		if p.Ranks == 2048 && p.Mode == comm.AllToAllMode {
			a2a = p.Relative
		}
		if p.Ranks == 2048 && p.Mode == comm.NeighborAllToAll {
			na2a = p.Relative
		}
	}
	if a2a >= na2a {
		t.Fatalf("A2A relative %v should trail N-A2A %v", a2a, na2a)
	}
}

func TestReducedGraphAblation(t *testing.T) {
	rows, err := ReducedGraphAblation(5, 4, []int{8, 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.RawNodes <= r.CollapsedNodes {
			t.Fatalf("R=%d: raw %d not larger than collapsed %d", r.Ranks, r.RawNodes, r.CollapsedNodes)
		}
		// At p=5 the duplication approaches (p+1)^3/p^3 = 1.728 for
		// large meshes; it must exceed 1.3 even at this size.
		if r.NodeDuplication < 1.3 || r.NodeDuplication > 1.8 {
			t.Fatalf("R=%d: node duplication %v out of range", r.Ranks, r.NodeDuplication)
		}
		if r.EdgeDuplication < 1.0 || r.EdgeDuplication > 1.5 {
			t.Fatalf("R=%d: edge duplication %v out of range", r.Ranks, r.EdgeDuplication)
		}
	}
}

func TestExtensionRenderers(t *testing.T) {
	var sb strings.Builder
	ss, err := StrongScaling(perfmodel.Frontier(), 3, 16, []int{8, 64}, gnn.SmallConfig(),
		[]comm.ExchangeMode{comm.NoExchange})
	if err != nil {
		t.Fatal(err)
	}
	RenderStrongScaling(&sb, ss)
	inf, err := InferenceThroughput(perfmodel.Frontier(), 5, Loading256k(), []int{8},
		gnn.SmallConfig(), DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	RenderInference(&sb, inf)
	rg, err := ReducedGraphAblation(3, 2, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	RenderReducedGraph(&sb, rg)
	for _, want := range []string{"speedup", "inference throughput", "duplication"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestLayerSweepShape(t *testing.T) {
	pts, err := LayerSweep(perfmodel.Frontier(), 5, Loading512k(), 512,
		gnn.LargeConfig(), []int{2, 4, 8}, DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 9 {
		t.Fatalf("%d points", len(pts))
	}
	// At every depth the baseline is 1 by definition and A2A trails
	// N-A2A (its per-exchange cost at 512 ranks dominates).
	rel := func(m int, mode comm.ExchangeMode) float64 {
		for _, p := range pts {
			if p.MPLayers == m && p.Mode == mode {
				return p.Relative
			}
		}
		t.Fatalf("missing %d/%v", m, mode)
		return 0
	}
	for _, m := range []int{2, 4, 8} {
		if rel(m, comm.NoExchange) != 1 {
			t.Fatal("baseline relative must be 1")
		}
		if rel(m, comm.AllToAllMode) >= rel(m, comm.NeighborAllToAll) {
			t.Fatalf("M=%d: A2A should trail N-A2A", m)
		}
	}
	var sb strings.Builder
	RenderLayerSweep(&sb, pts)
	if !strings.Contains(sb.String(), "exchanges/step") {
		t.Fatal("render missing header")
	}
}

func TestHaloVolumeAccounting(t *testing.T) {
	rows, err := HaloVolume(5, Loading512k(), []int{8, 2048}, gnn.LargeConfig(), DefaultModes())
	if err != nil {
		t.Fatal(err)
	}
	get := func(r int, mode comm.ExchangeMode) HaloVolumeRow {
		for _, row := range rows {
			if row.Ranks == r && row.Mode == mode {
				return row
			}
		}
		t.Fatalf("missing %d/%v", r, mode)
		return HaloVolumeRow{}
	}
	if v := get(8, comm.NoExchange); v.BytesPerStep != 0 || v.MessagesPerStep != 0 {
		t.Fatalf("no-exchange traffic %+v", v)
	}
	// N-A2A volume is loading-determined, not R-determined: identical
	// useful bytes at 8 and 2048 ranks up to halo-count variation.
	na8, na2048 := get(8, comm.NeighborAllToAll), get(2048, comm.NeighborAllToAll)
	if na8.BytesPerStep <= 0 || na2048.BytesPerStep <= 0 {
		t.Fatal("missing N-A2A traffic")
	}
	ratio := float64(na2048.BytesPerStep) / float64(na8.BytesPerStep)
	if ratio > 4 {
		t.Fatalf("N-A2A volume grew %vx from 8 to 2048 ranks", ratio)
	}
	// A2A volume explodes with R and is mostly dummy.
	a8, a2048 := get(8, comm.AllToAllMode), get(2048, comm.AllToAllMode)
	// Peers grow 256x from 8 to 2048 ranks; the per-peer uniform buffer
	// shrinks somewhat as the partition switches from slabs to blocks,
	// so the net growth is ~70x.
	if a2048.BytesPerStep < 50*a8.BytesPerStep {
		t.Fatalf("A2A volume should explode with R: %d -> %d", a8.BytesPerStep, a2048.BytesPerStep)
	}
	if a2048.DummyFraction < 0.9 {
		t.Fatalf("A2A at 2048 ranks should be mostly dummy traffic: %v", a2048.DummyFraction)
	}
	var sb strings.Builder
	RenderHaloVolume(&sb, rows)
	if !strings.Contains(sb.String(), "dummy fraction") {
		t.Fatal("render missing header")
	}
}
