package experiments

import (
	"fmt"
	"io"

	"meshgnn/internal/comm"
	"meshgnn/internal/gnn"
	"meshgnn/internal/perfmodel"
)

// LayerSweepPoint is one point of the message-passing-depth sweep: the
// paper notes each training step performs one halo exchange per NMP layer
// per direction ("8 all_to_all communications ... for M=4"), so the
// consistency overhead scales with M while the no-exchange baseline only
// pays more compute. This sweep quantifies that trade.
type LayerSweepPoint struct {
	MPLayers  int
	Mode      comm.ExchangeMode
	Ranks     int
	IterTime  float64
	Exchanges int     // halo exchanges per training step (2M)
	Relative  float64 // throughput vs no-exchange at the same M
}

// LayerSweep projects per-iteration time across message-passing depths
// for the weak-scaling workload.
func LayerSweep(m perfmodel.Machine, p int, load Loading, r int, base gnn.Config, depths []int, modes []comm.ExchangeMode) ([]LayerSweepPoint, error) {
	var out []LayerSweepPoint
	for _, depth := range depths {
		cfg := base
		cfg.MessagePassingLayers = depth
		w, _, err := scalingWorkload(p, load, r, cfg)
		if err != nil {
			return nil, fmt.Errorf("M=%d: %w", depth, err)
		}
		baseline := m.IterTime(w, comm.NoExchange)
		for _, mode := range modes {
			t := m.IterTime(w, mode)
			out = append(out, LayerSweepPoint{
				MPLayers:  depth,
				Mode:      mode,
				Ranks:     r,
				IterTime:  t,
				Exchanges: 2 * depth,
				Relative:  baseline / t,
			})
		}
	}
	return out, nil
}

// RenderLayerSweep writes the depth-sweep table.
func RenderLayerSweep(w io.Writer, pts []LayerSweepPoint) {
	fmt.Fprintln(w, "| NMP layers (M) | exchanges/step | mode | s/iter | relative to no-exchange |")
	fmt.Fprintln(w, "|---|---|---|---|---|")
	for _, p := range pts {
		fmt.Fprintf(w, "| %d | %d | %s | %.5f | %.3f |\n",
			p.MPLayers, p.Exchanges, p.Mode, p.IterTime, p.Relative)
	}
}
