package experiments

import (
	"fmt"
	"io"

	"meshgnn/internal/comm"
	"meshgnn/internal/gnn"
)

// HaloVolumeRow accounts the per-rank, per-training-step halo traffic of
// each exchange implementation — the byte-level view behind Figs. 7–8:
// the consistent formulation's cost is exactly these buffers, 2M times
// per step.
type HaloVolumeRow struct {
	Ranks int
	Mode  comm.ExchangeMode
	// MessagesPerStep counts point-to-point sends per rank per training
	// step (2M exchanges).
	MessagesPerStep int64
	// BytesPerStep is the per-rank payload volume per training step.
	BytesPerStep int64
	// DummyFraction is the share of A2A traffic carried by padding and
	// non-neighbor "dummy" buffers (zero for neighbor-aware modes).
	DummyFraction float64
}

// HaloVolume computes the exact traffic accounting from the partition
// geometry (fp32 wire format, as the paper's stack exchanges).
func HaloVolume(p int, load Loading, rs []int, cfg gnn.Config, modes []comm.ExchangeMode) ([]HaloVolumeRow, error) {
	const bytesPerFloat = 4
	var out []HaloVolumeRow
	for _, r := range rs {
		w, _, err := scalingWorkload(p, load, r, cfg)
		if err != nil {
			return nil, err
		}
		exchanges := int64(2 * w.MPLayers)
		width := int64(w.Hidden) * bytesPerFloat
		usefulBytes := w.HaloPerRank * width
		for _, mode := range modes {
			row := HaloVolumeRow{Ranks: r, Mode: mode}
			switch mode {
			case comm.NoExchange:
				// nothing
			case comm.NeighborAllToAll, comm.SendRecvMode:
				row.MessagesPerStep = exchanges * int64(w.Neighbors)
				row.BytesPerStep = exchanges * usefulBytes
			case comm.AllToAllMode:
				peers := int64(r - 1)
				row.MessagesPerStep = exchanges * peers
				row.BytesPerStep = exchanges * peers * w.MaxSendCount * width
				if row.BytesPerStep > 0 {
					row.DummyFraction = 1 - float64(exchanges*usefulBytes)/float64(row.BytesPerStep)
				}
			default:
				return nil, fmt.Errorf("experiments: unknown mode %v", mode)
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// RenderHaloVolume writes the traffic-accounting table.
func RenderHaloVolume(w io.Writer, rows []HaloVolumeRow) {
	fmt.Fprintln(w, "| ranks | mode | msgs/step/rank | bytes/step/rank | dummy fraction |")
	fmt.Fprintln(w, "|---|---|---|---|---|")
	for _, r := range rows {
		fmt.Fprintf(w, "| %d | %s | %d | %.3g | %.2f |\n",
			r.Ranks, r.Mode, r.MessagesPerStep, float64(r.BytesPerStep), r.DummyFraction)
	}
}
