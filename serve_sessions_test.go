package meshgnn

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// sessionServeSystem builds the 2-rank serving fixture with a
// configurable pipeline (sync or overlapped halo exchange).
func sessionServeSystem(t *testing.T, overlap bool) (*System, *Model, []*Matrix) {
	t.Helper()
	m, err := NewMesh(3, 3, 3, 2, FullyPeriodic)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(m, 2, Slabs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SmallConfig()
	cfg.Overlap = overlap
	model, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := TaylorGreen{V0: 1, L: 1, Nu: 0.01}
	inputs := make([]*Matrix, sys.Ranks)
	for r := range inputs {
		inputs[r] = SampleField(f, sys.Locals[r], 0.25)
	}
	return sys, model, inputs
}

// TestServeSessionsBitwiseParity checks the multi-session contract on
// every transport × pipeline combination: S sessions serving concurrent
// Predict and Rollout requests over one shared immutable compiled engine
// must answer bit-for-bit what a sequential single-session server
// answers. The sessions are independent collective groups, so this is
// the test that would catch a shared mutable buffer (arena, task state,
// static-edge cache write) leaking across sessions.
func TestServeSessionsBitwiseParity(t *testing.T) {
	const sessions = 3
	const steps = 2
	for _, kind := range []TransportKind{InProcess, Sockets} {
		for _, overlap := range []bool{false, true} {
			sys, model, inputs := sessionServeSystem(t, overlap)
			alt := perturbed(inputs, 0.25)
			want := refForward(t, sys, inputs)
			wantAlt := refForward(t, sys, alt)

			// Sequential single-session reference for the rollout.
			ref, err := sys.Serve(InProcess, NeighborAllToAll, model)
			if err != nil {
				t.Fatal(err)
			}
			wantTraj, err := ref.Rollout(inputs, steps)
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.Close(); err != nil {
				t.Fatal(err)
			}

			srv, err := sys.ServeWith(kind, NeighborAllToAll, model, ServeOptions{
				Sessions: sessions,
				MaxBatch: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := srv.Sessions(); got != sessions {
				t.Fatalf("Sessions() = %d, want %d", got, sessions)
			}
			if got := srv.LiveSessions(); got != sessions {
				t.Fatalf("LiveSessions() = %d, want %d", got, sessions)
			}

			// 3 clients per session issuing interleaved predictions on two
			// distinct snapshots, plus concurrent rollouts.
			var wg sync.WaitGroup
			errs := make(chan error, 4*sessions)
			for cl := 0; cl < 3*sessions; cl++ {
				wg.Add(1)
				go func(cl int) {
					defer wg.Done()
					in, exp := inputs, want
					if cl%2 == 1 {
						in, exp = alt, wantAlt
					}
					for i := 0; i < 3; i++ {
						outs, err := srv.Predict(in)
						if err != nil {
							errs <- err
							return
						}
						for r := range exp {
							if !bitEqual(outs[r], exp[r]) {
								t.Errorf("%v overlap=%v client %d: rank %d diverged bitwise from the sequential reference",
									kind, overlap, cl, r)
								return
							}
						}
					}
				}(cl)
			}
			for cl := 0; cl < sessions; cl++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					trajs, err := srv.Rollout(inputs, steps)
					if err != nil {
						errs <- err
						return
					}
					for r := range trajs {
						for s := range trajs[r] {
							if !bitEqual(trajs[r][s], wantTraj[r][s]) {
								t.Errorf("%v overlap=%v: rollout rank %d step %d diverged bitwise", kind, overlap, r, s)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("%v overlap=%v: %v", kind, overlap, err)
			}
			if err := srv.Close(); err != nil {
				t.Fatalf("%v overlap=%v close: %v", kind, overlap, err)
			}
		}
	}
}

// TestServeSessionFatalIsolation injects a panic into one session's rank
// world (ServeOptions.WrapSession targets the fault plan at session 0
// only) and checks the PR-8 failure contract now holds per session: the
// poisoned session fails its request with a classified error naming the
// session and latches fatal, while the sibling keeps serving
// bitwise-correct answers — capacity degrades, the server survives.
func TestServeSessionFatalIsolation(t *testing.T) {
	setupOps := calibrateServeSetupOps(t)
	sys, model, inputs := serveSystem(t)
	want := refForward(t, sys, inputs)

	plan := NewFaultPlan().Add(0, FaultEvent{
		AfterOps: setupOps, Kind: FaultPanic, Peer: -1,
	})
	srv, err := sys.ServeWith(InProcess, NeighborAllToAll, model, ServeOptions{
		Sessions: 2,
		WrapSession: func(session int) func(Transport) Transport {
			if session == 0 {
				return plan.Wrap
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Both sessions are idle, so the first request routes to session 0
	// (ties break toward the lowest id) and dies on the injected panic.
	_, err = srv.Predict(inputs)
	if err == nil {
		t.Fatal("request served by the poisoned session succeeded")
	}
	if !strings.Contains(err.Error(), "session 0") {
		t.Fatalf("poisoned session's error does not name it: %v", err)
	}

	// The fatal latch trips as the rank world unwinds; wait for the
	// capacity accounting to observe it.
	deadline := time.Now().Add(5 * time.Second)
	for srv.LiveSessions() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("LiveSessions() = %d, want 1 after session 0 latched fatal", srv.LiveSessions())
		}
		time.Sleep(time.Millisecond)
	}
	if got := srv.Sessions(); got != 2 {
		t.Fatalf("Sessions() = %d, want 2 (configured capacity is not rewritten by failures)", got)
	}

	// The sibling serves on, bitwise-correct.
	for i := 0; i < 3; i++ {
		outs, err := srv.Predict(inputs)
		if err != nil {
			t.Fatalf("sibling session request %d: %v", i, err)
		}
		for r := range want {
			if !bitEqual(outs[r], want[r]) {
				t.Fatalf("sibling session request %d: rank %d diverged bitwise", i, r)
			}
		}
	}

	// Close reports the injected fault, not a clean shutdown.
	if err := srv.Close(); err == nil {
		t.Fatal("Close after an injected session panic returned nil")
	}
}

// TestServeSessionsCloseDrains checks the drain contract across
// sessions: every request admitted before Close gets a real answer (the
// admission/close handshake is deterministic — no request is ever
// dropped into a closed queue), and post-close submissions fail cleanly.
func TestServeSessionsCloseDrains(t *testing.T) {
	sys, model, inputs := serveSystem(t)
	want := refForward(t, sys, inputs)
	srv, err := sys.ServeWith(InProcess, NeighborAllToAll, model, ServeOptions{
		Sessions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	const requests = 6
	outs := make([][]*Matrix, requests)
	errs := make([]error, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = srv.Predict(inputs)
		}(i)
	}
	time.Sleep(2 * time.Millisecond) // let some requests into the queues
	closeErr := srv.Close()
	wg.Wait()
	if closeErr != nil {
		t.Fatalf("close: %v", closeErr)
	}
	for i := 0; i < requests; i++ {
		if errs[i] != nil {
			// A request that lost the race with Close must fail with the
			// closed-server error, not hang or panic.
			if !strings.Contains(errs[i].Error(), "closed") {
				t.Fatalf("request %d failed with %v, want a closed-server error", i, errs[i])
			}
			continue
		}
		for r := range want {
			if !bitEqual(outs[i][r], want[r]) {
				t.Fatalf("drained request %d: rank %d diverged bitwise", i, r)
			}
		}
	}
	if _, err := srv.Predict(inputs); err == nil {
		t.Fatal("Predict after Close succeeded")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
