package meshgnn

import (
	"math"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	m, err := NewMesh(4, 4, 2, 1, FullyPeriodic)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(m, 4, Blocks)
	if err != nil {
		t.Fatal(err)
	}
	losses, err := RunCollect(sys, NeighborAllToAll, func(r *Rank) (float64, error) {
		model, err := NewModel(SmallConfig())
		if err != nil {
			return 0, err
		}
		trainer := NewTrainer(model, NewAdam(1e-3))
		x := r.Sample(TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0)
		var last float64
		for i := 0; i < 3; i++ {
			last = trainer.Step(r.Ctx, x, x)
		}
		return last, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, l := range losses {
		if l != losses[0] {
			t.Fatalf("rank %d loss %v differs", rank, l)
		}
		if math.IsNaN(l) || l <= 0 {
			t.Fatalf("bad loss %v", l)
		}
	}
}

func TestVerifyConsistencyPublic(t *testing.T) {
	m, err := NewMesh(4, 2, 2, 2, NonPeriodic)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(m, 4, Blocks)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SmallConfig()
	cfg.MessagePassingLayers = 2
	diff, err := VerifyConsistency(sys, cfg, NeighborAllToAll, TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if diff > 1e-11 {
		t.Fatalf("consistency violated: %g", diff)
	}
	// Without exchanges the same check must fail visibly.
	diffNone, err := VerifyConsistency(sys, cfg, NoExchange, TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if diffNone < 1e-9 {
		t.Fatalf("no-exchange run unexpectedly consistent: %g", diffNone)
	}
}

func TestSystemStats(t *testing.T) {
	m, err := NewMesh(4, 4, 4, 1, NonPeriodic)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(m, 8, Blocks)
	if err != nil {
		t.Fatal(err)
	}
	stats := sys.Stats()
	if len(stats) != 8 {
		t.Fatalf("%d stats", len(stats))
	}
	var halo int64
	for _, s := range stats {
		if s.LocalNodes <= 0 {
			t.Fatal("empty rank")
		}
		halo += s.HaloNodes
	}
	if halo == 0 {
		t.Fatal("no halos on a partitioned mesh")
	}
}

func TestRankHelpers(t *testing.T) {
	m, _ := NewMesh(2, 2, 2, 1, NonPeriodic)
	sys, _ := NewSystem(m, 2, Slabs)
	err := sys.Run(SendRecv, func(r *Rank) error {
		if r.ID() != r.Ctx.Comm.Rank() {
			t.Error("ID mismatch")
		}
		x := r.Sample(GaussianPulse{Amplitude: 1, Sigma0: 0.2, Alpha: 0.1, Cx: 0.5, Cy: 0.5, Cz: 0.5}, 0)
		if l := r.Loss(x, x); l != 0 {
			t.Errorf("self-loss %v", l)
		}
		out, disc := r.Assemble(x)
		if r.ID() == 0 {
			if out == nil || out.Rows != int(m.NumNodes()) {
				t.Error("assemble shape wrong")
			}
			if disc != 0 {
				t.Errorf("field sample discrepancy %v", disc)
			}
		} else if out != nil {
			t.Error("non-root rank got assembled output")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
