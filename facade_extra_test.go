package meshgnn

import (
	"bytes"
	"fmt"
	"math"
	"testing"
)

func TestNewSystemRCB(t *testing.T) {
	m, err := NewMesh(5, 4, 3, 1, NonPeriodic)
	if err != nil {
		t.Fatal(err)
	}
	// 5 ranks: impossible for a Cartesian grid on this mesh, natural
	// for RCB.
	sys, err := NewSystemRCB(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Ranks != 5 {
		t.Fatalf("ranks = %d", sys.Ranks)
	}
	diff, err := VerifyConsistency(sys, SmallConfig(), SendRecv, TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diff > 1e-11 {
		t.Fatalf("RCB system inconsistent: %g", diff)
	}
}

func TestAttentionThroughFacade(t *testing.T) {
	m, err := NewMesh(4, 2, 2, 1, NonPeriodic)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(m, 4, Blocks)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SmallConfig()
	cfg.Attention = true
	diff, err := VerifyConsistency(sys, cfg, NeighborAllToAll, TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diff > 1e-11 {
		t.Fatalf("attention model inconsistent: %g", diff)
	}
}

func TestDiffusionThroughFacade(t *testing.T) {
	m, err := NewMesh(4, 4, 2, 2, FullyPeriodic)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(m, 4, Blocks)
	if err != nil {
		t.Fatal(err)
	}
	energies, err := RunCollect(sys, NeighborAllToAll, func(r *Rank) ([2]float64, error) {
		d, err := r.NewDiffusion(0.5, 0.5)
		if err != nil {
			return [2]float64{}, err
		}
		x := r.Sample(TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0)
		u := &Matrix{Rows: x.Rows, Cols: 1, Data: make([]float64, x.Rows)}
		for i := 0; i < x.Rows; i++ {
			u.Data[i] = x.At(i, 0)
		}
		e0 := d.Energy(u)
		d.Run(u, 10, nil)
		return [2]float64{e0, d.Energy(u)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, e := range energies {
		if e[1] >= e[0] {
			t.Fatalf("rank %d: energy did not dissipate: %v -> %v", rank, e[0], e[1])
		}
		if e != energies[0] {
			t.Fatalf("rank %d: energies differ across ranks (AllReduced values must agree)", rank)
		}
	}
}

func TestFitWithNoiseThroughFacade(t *testing.T) {
	m, err := NewMesh(3, 2, 2, 1, NonPeriodic)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(m, 2, Slabs)
	if err != nil {
		t.Fatal(err)
	}
	curves, err := RunCollect(sys, SendRecv, func(r *Rank) ([]float64, error) {
		model, err := NewModel(SmallConfig())
		if err != nil {
			return nil, err
		}
		tr := NewTrainer(model, NewAdam(2e-3))
		var ds Dataset
		x := r.Sample(TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0)
		ds.Add(x, x)
		return tr.Fit(r.Ctx, &ds, FitOptions{Epochs: 10, ShuffleSeed: 3, NoiseSigma: 0.02, NoiseSeed: 4}), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	c := curves[0]
	if len(c) != 10 || c[9] >= c[0] {
		t.Fatalf("noisy Fit did not converge: %v", c)
	}
	for rank := range curves {
		for e := range c {
			if curves[rank][e] != c[e] {
				t.Fatalf("rank %d epoch %d: loss differs", rank, e)
			}
		}
	}
}

func TestSaveLoadThroughFacade(t *testing.T) {
	model, err := NewModel(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, model); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumParams() != model.NumParams() {
		t.Fatal("param count changed through facade save/load")
	}
}

func TestNoiseFieldThroughFacade(t *testing.T) {
	m, _ := NewMesh(2, 2, 2, 1, NonPeriodic)
	sys, _ := NewSystem(m, 1, Slabs)
	n := NoiseField(sys.Locals[0], 3, 0.5, 7)
	if n.Rows != sys.Locals[0].NumLocal() || n.Cols != 3 {
		t.Fatalf("noise shape %dx%d", n.Rows, n.Cols)
	}
	var norm float64
	for _, v := range n.Data {
		norm += v * v
	}
	if math.Sqrt(norm) == 0 {
		t.Fatal("zero noise")
	}
}

func TestTrainingStateThroughFacade(t *testing.T) {
	m, _ := NewMesh(2, 2, 2, 1, NonPeriodic)
	sys, _ := NewSystem(m, 1, Slabs)
	err := sys.Run(NoExchange, func(r *Rank) error {
		model, err := NewModel(SmallConfig())
		if err != nil {
			return err
		}
		tr := NewTrainer(model, NewAdam(1e-3))
		x := r.Sample(TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0)
		tr.Step(r.Ctx, x, x)
		var buf bytes.Buffer
		if err := SaveTrainingState(&buf, tr); err != nil {
			return err
		}
		tr2, err := LoadTrainingState(&buf, NewAdam(1e-3))
		if err != nil {
			return err
		}
		// Both trainers take the same next step.
		l1 := tr.Step(r.Ctx, x, x)
		l2 := tr2.Step(r.Ctx, x, x)
		if l1 != l2 {
			t.Errorf("resumed trainer diverged: %v vs %v", l1, l2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateThroughFacade(t *testing.T) {
	m, _ := NewMesh(2, 2, 2, 1, NonPeriodic)
	sys, _ := NewSystem(m, 2, Slabs)
	err := sys.Run(SendRecv, func(r *Rank) error {
		x := r.Sample(TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0)
		metrics := Evaluate(r.Ctx, x, x)
		if metrics.MSE != 0 || metrics.MaxAbs != 0 {
			t.Errorf("self metrics %+v", metrics)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrorPropagation(t *testing.T) {
	m, _ := NewMesh(2, 2, 2, 1, NonPeriodic)
	sys, _ := NewSystem(m, 2, Slabs)
	err := sys.Run(NoExchange, func(r *Rank) error {
		if r.ID() == 1 {
			return errBoom
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error from rank 1")
	}
}

var errBoom = fmt.Errorf("boom")

func TestNewSystemErrors(t *testing.T) {
	m, _ := NewMesh(2, 2, 2, 1, NonPeriodic)
	if _, err := NewSystem(m, 100, Slabs); err == nil {
		t.Fatal("expected error for too many slabs")
	}
	if _, err := NewSystemRCB(m, 100); err == nil {
		t.Fatal("expected error for too many RCB ranks")
	}
}

func TestMappedSystemThroughFacade(t *testing.T) {
	m, _ := NewMesh(4, 3, 2, 1, NonPeriodic)
	if err := m.SetMapping(AnnulusSector(1, 2, 1)); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(m, 2, Slabs)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := VerifyConsistency(sys, SmallConfig(), SendRecv, TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diff > 1e-11 {
		t.Fatalf("mapped facade system inconsistent: %g", diff)
	}
}
