// Benchmarks regenerating every table and figure of the paper's
// evaluation section. Absolute times reflect this host, not Frontier; the
// artifacts themselves (consistency rows, partition statistics, projected
// scaling series) are produced inside the bench bodies and asserted for
// the paper's qualitative findings. Run with:
//
//	go test -bench=. -benchmem
package meshgnn

import (
	"fmt"
	"math/rand"
	"testing"

	"meshgnn/internal/comm"
	"meshgnn/internal/experiments"
	"meshgnn/internal/gnn"
	"meshgnn/internal/parallel"
	"meshgnn/internal/perfmodel"
	"meshgnn/internal/tensor"
)

// BenchmarkTable1_ModelConfigs regenerates Table I: it constructs both
// model configurations and verifies the trainable-parameter counts match
// the published 3,979 / 91,459.
func BenchmarkTable1_ModelConfigs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if rows[0].Parameters != 3979 || rows[1].Parameters != 91459 {
			b.Fatalf("Table I mismatch: %+v", rows)
		}
		if _, err := gnn.NewModel(gnn.SmallConfig()); err != nil {
			b.Fatal(err)
		}
		if _, err := gnn.NewModel(gnn.LargeConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Left_ConsistencyInference regenerates Fig. 6 (left): loss
// versus rank count for standard and consistent NMP layers on a cubic
// mesh (scaled down from the paper's 32³ elements to keep a bench
// iteration short; cmd/consistency runs the full size).
func BenchmarkFig6Left_ConsistencyInference(b *testing.B) {
	cfg := gnn.SmallConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6Left(8, 1, []int{2, 4, 8}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if d := r.Consistent - r.TargetR1; d > 1e-10 || d < -1e-10 {
				b.Fatalf("consistency broken at R=%d", r.R)
			}
		}
	}
}

// BenchmarkFig6Right_ConsistencyTraining regenerates Fig. 6 (right): a
// slice of the training curves for the R=1 target and the R=8 standard /
// consistent runs.
func BenchmarkFig6Right_ConsistencyTraining(b *testing.B) {
	b.ReportAllocs()
	cfg := gnn.SmallConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6Right(4, 1, 8, 5, cfg, 1e-3)
		if err != nil {
			b.Fatal(err)
		}
		for it := range res.TargetR1 {
			d := res.Consistent[it] - res.TargetR1[it]
			if d > 1e-7 || d < -1e-7 {
				b.Fatalf("training consistency broken at iter %d", it)
			}
		}
	}
}

// BenchmarkTable2_PartitionStats regenerates Table II at full paper scale
// — 8 to 2048 ranks, p=5, 16³ elements per rank, 1.1e9 total graph nodes
// — through the analytic statistics path.
func BenchmarkTable2_PartitionStats(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(5, 16, []int{8, 64, 512, 2048})
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].HaloAvg != 12800 {
			b.Fatalf("R=8 halo %v, want 12.8k", rows[0].HaloAvg)
		}
	}
}

// BenchmarkFig7_WeakScalingProjection regenerates Fig. 7: projected total
// throughput and weak-scaling efficiency for both model sizes, both
// loadings, and all three exchange modes from 8 to 2048 ranks on the
// Frontier machine model.
func BenchmarkFig7_WeakScalingProjection(b *testing.B) {
	m := perfmodel.Frontier()
	rs := []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048}
	loadings := []experiments.Loading{experiments.Loading256k(), experiments.Loading512k()}
	cfgs := []gnn.Config{gnn.SmallConfig(), gnn.LargeConfig()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig7Frontier(m, 5, rs, loadings, cfgs, experiments.DefaultModes())
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != len(rs)*len(loadings)*len(cfgs)*3 {
			b.Fatalf("%d points", len(pts))
		}
	}
}

// BenchmarkFig7_WeakScalingMeasured runs the measured tier: real
// goroutine-rank training iterations with wall-clock timing and exact
// message counts across exchange modes.
func BenchmarkFig7_WeakScalingMeasured(b *testing.B) {
	b.ReportAllocs()
	cfg := gnn.SmallConfig()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig7Measured(3, 2, []int{2, 4, 8}, cfg,
			[]comm.ExchangeMode{comm.AllToAllMode, comm.NeighborAllToAll}, 2)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("no measured points")
		}
	}
}

// BenchmarkFig8_RelativeThroughput regenerates Fig. 8: consistent-model
// throughput normalized by the no-exchange baseline across the sweep,
// asserting the paper's headline ordering (N-A2A marginal, A2A
// impractical at scale).
func BenchmarkFig8_RelativeThroughput(b *testing.B) {
	b.ReportAllocs()
	m := perfmodel.Frontier()
	rs := []int{8, 64, 512, 2048}
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig7Frontier(m, 5, rs,
			[]experiments.Loading{experiments.Loading512k()},
			[]gnn.Config{gnn.LargeConfig()}, experiments.DefaultModes())
		if err != nil {
			b.Fatal(err)
		}
		var na2aAt64, a2aAt2048 float64
		for _, p := range pts {
			if p.Mode == comm.NeighborAllToAll && p.Ranks == 64 {
				na2aAt64 = p.Relative
			}
			if p.Mode == comm.AllToAllMode && p.Ranks == 2048 {
				a2aAt2048 = p.Relative
			}
		}
		if na2aAt64 < 0.9 || a2aAt2048 > 0.5 {
			b.Fatalf("Fig. 8 shape broken: N-A2A@64 %.3f, A2A@2048 %.3f", na2aAt64, a2aAt2048)
		}
	}
}

// --- Intra-rank parallel engine benches ----------------------------------
//
// Serial-vs-parallel comparisons for the hot kernels, establishing the
// perf trajectory of the worker-pool engine. The thread counts bracket
// CI-class hardware (1 = the old serial path, 4 = the acceptance target,
// 0 = all of GOMAXPROCS). Deterministic mode is on throughout, so every
// thread count computes bitwise-identical results.

// benchThreads are the engine settings each kernel bench sweeps.
var benchThreads = []int{1, 2, 4, 0}

func threadLabel(n int) string {
	if n == 0 {
		return "threads=max"
	}
	return fmt.Sprintf("threads=%d", n)
}

// BenchmarkParallel_MatMul times the forward GEMM at the large-model edge
// shape: 49k edge rows through a 96→32 linear layer (the EdgeMLP input
// layer of an 8³-element p=3 sub-graph).
func BenchmarkParallel_MatMul(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	const rows, in, out = 49152, 96, 32
	a := tensor.New(rows, in)
	w := tensor.New(in, out)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	dst := tensor.New(rows, out)
	for _, threads := range benchThreads {
		b.Run(threadLabel(threads), func(b *testing.B) {
			b.ReportAllocs()
			parallel.Configure(threads, true)
			defer parallel.Configure(0, true)
			b.SetBytes(int64(8 * rows * in))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMul(dst, a, w)
			}
		})
	}
}

// BenchmarkParallel_MatMulATB times the weight-gradient GEMM (dW = xᵀ·dy),
// the deterministic chunked reduction, at the same shape.
func BenchmarkParallel_MatMulATB(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(2))
	const rows, in, out = 49152, 96, 32
	x := tensor.New(rows, in)
	dy := tensor.New(rows, out)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range dy.Data {
		dy.Data[i] = rng.NormFloat64()
	}
	dw := tensor.New(in, out)
	for _, threads := range benchThreads {
		b.Run(threadLabel(threads), func(b *testing.B) {
			b.ReportAllocs()
			parallel.Configure(threads, true)
			defer parallel.Configure(0, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMulATB(dw, x, dy)
			}
		})
	}
}

// BenchmarkParallel_NMPLayer times one full consistent NMP layer
// Forward+Backward (edge MLP, degree-scaled aggregation, node MLP, and
// the CSR-grouped adjoint scatters) on a real 8³-element p=3 sub-graph at
// the large model's hidden width — the per-layer unit of the paper's
// training step.
func BenchmarkParallel_NMPLayer(b *testing.B) {
	b.ReportAllocs()
	m, err := NewMesh(8, 8, 8, 3, FullyPeriodic)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewSystem(m, 1, Slabs)
	if err != nil {
		b.Fatal(err)
	}
	const hidden = 32
	for _, threads := range benchThreads {
		b.Run(threadLabel(threads), func(b *testing.B) {
			b.ReportAllocs()
			parallel.Configure(threads, true)
			defer parallel.Configure(0, true)
			err := sys.Run(NoExchange, func(r *Rank) error {
				rng := rand.New(rand.NewSource(3))
				layer := gnn.NewNMPLayer("bench", hidden, 2, rng)
				x := tensor.New(r.Graph.NumLocal(), hidden)
				e := tensor.New(r.Graph.NumEdges(), hidden)
				for i := range x.Data {
					x.Data[i] = rng.NormFloat64()
				}
				for i := range e.Data {
					e.Data[i] = rng.NormFloat64()
				}
				arena := tensor.NewArena()
				layer.SetArena(arena)
				step := func() {
					arena.Reset()
					xo, eo := layer.Forward(r.Ctx, x, e)
					_, _ = layer.Backward(xo, eo)
				}
				step() // warm-up: record the workspace arena
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					step()
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkParallel_TrainStep times the end-to-end training step (encode,
// M NMP layers, decode, consistent loss, backward, AllReduce, Adam) for
// the large model on a single-rank 6³-element p=3 sub-graph — the
// throughput quantity of the paper's Fig. 7, now as a function of
// intra-rank threads.
func BenchmarkParallel_TrainStep(b *testing.B) {
	b.ReportAllocs()
	m, err := NewMesh(6, 6, 6, 3, FullyPeriodic)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewSystem(m, 1, Slabs)
	if err != nil {
		b.Fatal(err)
	}
	for _, threads := range benchThreads {
		b.Run(threadLabel(threads), func(b *testing.B) {
			b.ReportAllocs()
			parallel.Configure(threads, true)
			defer parallel.Configure(0, true)
			err := sys.Run(NoExchange, func(r *Rank) error {
				model, err := NewModel(LargeConfig())
				if err != nil {
					return err
				}
				trainer := NewTrainer(model, NewSGD(0.01))
				x := r.Sample(TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0)
				trainer.Step(r.Ctx, x, x) // warm-up: record the arena
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					trainer.Step(r.Ctx, x, x)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// --- Ablation benches (DESIGN.md "key design decisions") ----------------

// BenchmarkAblation_ExchangeModes times one full distributed training
// iteration under each halo exchange implementation at R=8, isolating the
// per-mode communication cost on real sub-graphs.
func BenchmarkAblation_ExchangeModes(b *testing.B) {
	b.ReportAllocs()
	for _, mode := range []ExchangeMode{NoExchange, AllToAll, NeighborAllToAll, SendRecv} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			m, err := NewMesh(8, 4, 4, 2, FullyPeriodic)
			if err != nil {
				b.Fatal(err)
			}
			sys, err := NewSystem(m, 8, Blocks)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := sys.Run(mode, func(r *Rank) error {
					model, err := NewModel(SmallConfig())
					if err != nil {
						return err
					}
					trainer := NewTrainer(model, NewSGD(0.01))
					x := r.Sample(TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0)
					trainer.Step(r.Ctx, x, x)
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_DegreeScaling compares the consistent degree-scaled
// aggregation against the unscaled variant (which double-counts shared
// edges): the scaling costs one multiply per edge and buys consistency.
func BenchmarkAblation_DegreeScaling(b *testing.B) {
	b.ReportAllocs()
	for _, scaled := range []bool{true, false} {
		name := "scaled"
		if !scaled {
			name = "unscaled"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			m, err := NewMesh(6, 6, 6, 2, NonPeriodic)
			if err != nil {
				b.Fatal(err)
			}
			sys, err := NewSystem(m, 4, Blocks)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := sys.Run(NeighborAllToAll, func(r *Rank) error {
					model, err := NewModel(SmallConfig())
					if err != nil {
						return err
					}
					for _, l := range model.Layers {
						l.(*gnn.NMPLayer).DisableDegreeScaling = !scaled
					}
					x := r.Sample(TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0)
					model.Forward(r.Ctx, x)
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_ModelSize times one R=1 forward/backward for the
// small and large Table I configurations on the same sub-graph, the
// compute side of the paper's model-size comparison.
func BenchmarkAblation_ModelSize(b *testing.B) {
	b.ReportAllocs()
	for _, cfg := range []Config{SmallConfig(), LargeConfig()} {
		b.Run(cfg.Name, func(b *testing.B) {
			b.ReportAllocs()
			m, err := NewMesh(4, 4, 4, 3, FullyPeriodic)
			if err != nil {
				b.Fatal(err)
			}
			sys, err := NewSystem(m, 1, Slabs)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := sys.Run(NoExchange, func(r *Rank) error {
					model, err := NewModel(cfg)
					if err != nil {
						return err
					}
					trainer := NewTrainer(model, NewSGD(0.01))
					x := r.Sample(TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0)
					trainer.Step(r.Ctx, x, x)
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_AttentionVsNMP compares the consistent attention
// processor (two exchanges forward, packed softmax sync) against the
// plain NMP processor at equal hidden width on the same distributed
// graph — the cost of the paper's Sec. II-B generalization.
func BenchmarkAblation_AttentionVsNMP(b *testing.B) {
	b.ReportAllocs()
	for _, attention := range []bool{false, true} {
		name := "nmp"
		if attention {
			name = "attention"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			m, err := NewMesh(6, 6, 3, 2, FullyPeriodic)
			if err != nil {
				b.Fatal(err)
			}
			sys, err := NewSystem(m, 4, Blocks)
			if err != nil {
				b.Fatal(err)
			}
			cfg := SmallConfig()
			cfg.Attention = attention
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := sys.Run(NeighborAllToAll, func(r *Rank) error {
					model, err := NewModel(cfg)
					if err != nil {
						return err
					}
					trainer := NewTrainer(model, NewSGD(0.01))
					x := r.Sample(TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0)
					trainer.Step(r.Ctx, x, x)
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtension_StrongScaling regenerates the strong-scaling
// extension sweep (fixed global mesh, growing R).
func BenchmarkExtension_StrongScaling(b *testing.B) {
	b.ReportAllocs()
	m := perfmodel.Frontier()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.StrongScaling(m, 5, 64, []int{8, 64, 512}, gnn.LargeConfig(),
			experiments.DefaultModes())
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkExtension_ReducedGraph regenerates the coincident-collapse
// ablation rows (paper Fig. 3(b) vs 3(c)).
func BenchmarkExtension_ReducedGraph(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ReducedGraphAblation(5, 16, []int{8, 64, 512, 2048})
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].NodeDuplication < 1.3 {
			b.Fatal("unexpected duplication")
		}
	}
}
