module meshgnn

go 1.24
