// Command ratchet is the benchmark regression gate: it compares two
// bench reports (cmd/bench JSON) and fails unless the new report holds
// the performance ratchet on the tracked kernels —
//
//   - mat_mul must beat the old report by at least -matmul-ratio (the
//     packed cache-blocked GEMM tier vs the legacy kernels), and
//   - infer_step must beat the old report by at least -infer-ratio
//     (default 1.0, i.e. no regression; set below 1.0 when comparing a
//     fresh run against a committed report from different hardware, where
//     only gross regressions are meaningful), and
//   - infer_step_f32, when present in the new report, must beat the new
//     report's own float64 infer_step by at least -f32-ratio (the
//     single-precision serving twin must pay for itself), and
//   - the batched serving tier, when present in the new report, must
//     amortize: the B=8 coalesced-batch entry's amortization_vs_b1 must
//     reach -batch-amort (default 1.5x; pass 0 to skip, e.g. when gating
//     a fresh run whose absolute serving latencies are too noisy for a
//     strict floor), and
//   - the concurrent serving tier must scale: the new report's S=4
//     multi-session entry must reach -session-scaling times the S=1
//     saturation throughput on the link-delay-emulated socket fabric
//     (default 2.5x; pass 0 to skip), with every entry's bitwise_equal
//     flag set — throughput bought by numeric divergence doesn't count,
//     and
//   - the batched training tier, when present in the new report, must
//     amortize: the B=8 row-block StepBatch entry's amortization_vs_b1
//     (per-sample cost vs B=1 sequential steps, gradients bitwise-equal
//     by construction) must reach -train-batch-amort (default 1.3x; pass
//     0 to skip).
//
// Per kernel the best (minimum) ns/op across the thread sweep is
// compared, so reports swept at different thread counts remain
// comparable. CI runs it over the committed reports:
//
//	go run ./cmd/ratchet -old BENCH_PR9.json -new BENCH_PR10.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type report struct {
	Benches []struct {
		Name    string  `json:"name"`
		Threads int     `json:"threads"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benches"`
	BatchedServing []struct {
		Batch            int     `json:"batch"`
		AmortizationVsB1 float64 `json:"amortization_vs_b1"`
	} `json:"batched_serving"`
	BatchedTraining []struct {
		Batch            int     `json:"batch"`
		AmortizationVsB1 float64 `json:"amortization_vs_b1"`
	} `json:"batched_training"`
	ConcurrentServing []struct {
		Sessions     int     `json:"sessions"`
		ScalingVsS1  float64 `json:"scaling_vs_s1"`
		BitwiseEqual bool    `json:"bitwise_equal"`
	} `json:"concurrent_serving"`
}

// best returns the minimum ns/op recorded for the named benchmark across
// the report's thread sweep, or 0 when the benchmark is absent.
func (r *report) best(name string) float64 {
	min := 0.0
	for _, b := range r.Benches {
		if b.Name == name && b.NsPerOp > 0 && (min == 0 || b.NsPerOp < min) {
			min = b.NsPerOp
		}
	}
	return min
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := &report{}
	if err := json.Unmarshal(data, r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Benches) == 0 {
		return nil, fmt.Errorf("%s: no benches recorded", path)
	}
	return r, nil
}

func main() {
	oldPath := flag.String("old", "BENCH_PR9.json", "baseline bench report")
	newPath := flag.String("new", "BENCH_PR10.json", "candidate bench report")
	matmulRatio := flag.Float64("matmul-ratio", 1.3, "required old/new speedup on mat_mul")
	inferRatio := flag.Float64("infer-ratio", 1.0, "required old/new speedup on infer_step (below 1.0 tolerates cross-hardware noise)")
	f32Ratio := flag.Float64("f32-ratio", 1.2, "required infer_step/infer_step_f32 speedup within the new report")
	batchAmort := flag.Float64("batch-amort", 1.5, "required B=8 batched-serving amortization in the new report (0 skips)")
	sessionScaling := flag.Float64("session-scaling", 2.5, "required S=4 concurrent-serving throughput scaling vs S=1 in the new report (0 skips)")
	trainBatchAmort := flag.Float64("train-batch-amort", 1.3, "required B=8 batched-training per-sample amortization in the new report (0 skips)")
	flag.Parse()

	oldRep, err := load(*oldPath)
	if err != nil {
		fail("%v", err)
	}
	newRep, err := load(*newPath)
	if err != nil {
		fail("%v", err)
	}

	ok := true
	check := func(label string, got, want float64) {
		status := "ok  "
		if got < want {
			status = "FAIL"
			ok = false
		}
		fmt.Printf("  %s  %-28s %8.3fx (need >= %.2fx)\n", status, label, got, want)
	}

	fmt.Printf("ratchet: %s -> %s (best ns/op across thread sweeps)\n", *oldPath, *newPath)
	for _, name := range []string{"mat_mul", "infer_step"} {
		oldNs, newNs := oldRep.best(name), newRep.best(name)
		if oldNs == 0 || newNs == 0 {
			fail("benchmark %q missing from a report (old=%v new=%v)", name, oldNs, newNs)
		}
		want := *inferRatio
		if name == "mat_mul" {
			want = *matmulRatio
		}
		fmt.Printf("  %-14s old %14.0f ns/op  new %14.0f ns/op\n", name, oldNs, newNs)
		check(name+" old/new", oldNs/newNs, want)
	}
	if f32 := newRep.best("infer_step_f32"); f32 > 0 {
		f64 := newRep.best("infer_step")
		fmt.Printf("  %-14s f64 %14.0f ns/op  f32 %14.0f ns/op\n", "infer f32/f64", f64, f32)
		check("infer_step f64/f32", f64/f32, *f32Ratio)
	} else {
		fmt.Println("  (no infer_step_f32 in the new report; f32 ratchet skipped)")
	}
	if *batchAmort > 0 {
		amort := 0.0
		for _, p := range newRep.BatchedServing {
			if p.Batch == 8 {
				amort = p.AmortizationVsB1
			}
		}
		if amort == 0 {
			fail("no B=8 batched_serving entry in the new report (pass -batch-amort 0 to skip)")
		}
		check("batched serving B=8 amort", amort, *batchAmort)
	} else {
		fmt.Println("  (batched-serving amortization ratchet skipped)")
	}
	if *sessionScaling > 0 {
		scaling := 0.0
		found := false
		for _, p := range newRep.ConcurrentServing {
			if !p.BitwiseEqual {
				fail("concurrent_serving S=%d entry is not bitwise-equal to the single-session engine", p.Sessions)
			}
			if p.Sessions == 4 {
				scaling, found = p.ScalingVsS1, true
			}
		}
		if !found {
			fail("no S=4 concurrent_serving entry in the new report (pass -session-scaling 0 to skip)")
		}
		check("concurrent serving S=4 scaling", scaling, *sessionScaling)
	} else {
		fmt.Println("  (session-scaling ratchet skipped)")
	}
	if *trainBatchAmort > 0 {
		amort := 0.0
		for _, p := range newRep.BatchedTraining {
			if p.Batch == 8 {
				amort = p.AmortizationVsB1
			}
		}
		if amort == 0 {
			fail("no B=8 batched_training entry in the new report (pass -train-batch-amort 0 to skip)")
		}
		check("batched training B=8 amort", amort, *trainBatchAmort)
	} else {
		fmt.Println("  (batched-training amortization ratchet skipped)")
	}

	if !ok {
		fail("performance ratchet not held")
	}
	fmt.Println("ratchet: held")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ratchet: "+format+"\n", args...)
	os.Exit(1)
}
