// Command consistency regenerates the paper's Fig. 6: the demonstration
// that consistent NMP layers make distributed GNN evaluations (left) and
// training trajectories (right) arithmetically equivalent to the
// unpartitioned R=1 graph, while standard NMP layers deviate.
//
// Usage:
//
//	consistency [-elems 16] [-p 1] [-rmax 64] [-train] [-iters 200] [-model small]
//
// The paper uses a 32³-element p=1 cubic mesh and R up to 64; the default
// here is 16³ to keep single-host runs quick. Pass -elems 32 for the full
// configuration.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"meshgnn/internal/experiments"
	"meshgnn/internal/gnn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("consistency: ")
	var (
		elems = flag.Int("elems", 16, "elements per axis of the cubic mesh (paper: 32)")
		p     = flag.Int("p", 1, "polynomial order (paper: 1)")
		rmax  = flag.Int("rmax", 64, "largest rank count (powers of two from 2)")
		train = flag.Bool("train", false, "also run the Fig. 6 (right) training comparison")
		iters = flag.Int("iters", 200, "training iterations for -train (paper: 1500)")
		rT    = flag.Int("rtrain", 8, "rank count for the training comparison (paper: 8)")
		model = flag.String("model", "small", "model configuration: small or large")
		lr    = flag.Float64("lr", 1e-3, "Adam learning rate for -train")
	)
	flag.Parse()

	cfg, err := configByName(*model)
	if err != nil {
		log.Fatal(err)
	}

	var rs []int
	for r := 2; r <= *rmax; r *= 2 {
		rs = append(rs, r)
	}
	fmt.Printf("Fig. 6 (left): loss vs ranks on a %d^3-element p=%d mesh, %s model (%d parameters)\n\n",
		*elems, *p, cfg.Name, cfg.ParamCount())
	rows, err := experiments.Fig6Left(*elems, *p, rs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	experiments.RenderFig6Left(os.Stdout, rows)
	fmt.Println("\nConsistent NMP losses match the R=1 target; standard NMP deviates with R.")

	if *train {
		fmt.Printf("\nFig. 6 (right): training curves, R=1 target vs R=%d standard/consistent, %d iterations\n\n",
			*rT, *iters)
		res, err := experiments.Fig6Right(*elems, *p, *rT, *iters, cfg, *lr)
		if err != nil {
			log.Fatal(err)
		}
		experiments.RenderFig6Right(os.Stdout, res, 12)
		fmt.Println("\nThe consistent curve retraces the R=1 optimization; the standard curve drifts.")
	}
}

func configByName(name string) (gnn.Config, error) {
	switch name {
	case "small":
		return gnn.SmallConfig(), nil
	case "large":
		return gnn.LargeConfig(), nil
	}
	return gnn.Config{}, fmt.Errorf("unknown model %q (want small or large)", name)
}
