// Command consistency regenerates the paper's Fig. 6: the demonstration
// that consistent NMP layers make distributed GNN evaluations (left) and
// training trajectories (right) arithmetically equivalent to the
// unpartitioned R=1 graph, while standard NMP layers deviate.
//
// Usage:
//
//	consistency [-elems 16] [-p 1] [-rmax 64] [-train] [-iters 200] [-model small]
//
// The paper uses a 32³-element p=1 cubic mesh and R up to 64; the default
// here is 16³ to keep single-host runs quick. Pass -elems 32 for the full
// configuration.
//
// A second mode extends the consistency claim across the process
// boundary. With -transport=both the same seeded training runs twice —
// once on R goroutine ranks over the in-process channel fabric, once on R
// separate OS processes over the socket transport (-procs, default 4) —
// and the per-step losses, final parameters, and serialized checkpoints
// are compared bit for bit. The command exits non-zero on any deviation:
//
//	consistency -transport=both [-procs 4] [-elems 4] [-p 1] [-iters 20]
//
// -transport=inproc or -transport=procs runs just one side and prints its
// loss trace (useful for debugging a transport in isolation).
//
// A third mode pins the overlapped halo pipeline: -overlap=both trains
// the same seeded model with the synchronous and the phased (overlapped)
// NMP pipeline — the overlapped side on both the channel and the socket
// fabric — and asserts the losses, parameters, and checkpoints agree bit
// for bit. Overlap must be a pure scheduling change:
//
//	consistency -overlap=both [-procs 4] [-elems 4] [-p 1] [-iters 20]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"meshgnn"
	"meshgnn/internal/experiments"
	"meshgnn/internal/gnn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("consistency: ")
	var (
		elems     = flag.Int("elems", 16, "elements per axis of the cubic mesh (paper: 32)")
		p         = flag.Int("p", 1, "polynomial order (paper: 1)")
		rmax      = flag.Int("rmax", 64, "largest rank count (powers of two from 2)")
		train     = flag.Bool("train", false, "also run the Fig. 6 (right) training comparison")
		iters     = flag.Int("iters", 200, "training iterations for -train (paper: 1500)")
		rT        = flag.Int("rtrain", 8, "rank count for the training comparison (paper: 8)")
		model     = flag.String("model", "small", "model configuration: small or large")
		lr        = flag.Float64("lr", 1e-3, "Adam learning rate for -train")
		transport = flag.String("transport", "", "cross-transport check: inproc, procs, or both")
		procs     = flag.Int("procs", 4, "rank/process count for -transport and -overlap")
		modeFlag  = flag.String("mode", "na2a", "halo exchange for -transport/-overlap: a2a, na2a, sendrecv")
		overlapCk = flag.String("overlap", "", "overlap check: on, off, or both (both trains synchronous vs overlapped — and overlapped over sockets — and asserts bitwise equality)")
	)
	flag.Parse()

	cfg, err := configByName(*model)
	if err != nil {
		log.Fatal(err)
	}

	if *transport != "" && *overlapCk != "" {
		log.Fatal("-transport and -overlap are separate harnesses; pass one at a time")
	}
	if *transport != "" {
		runTransportCheck(*transport, *procs, *elems, *p, *iters, *lr, *modeFlag, cfg)
		return
	}
	if *overlapCk != "" {
		runOverlapCheck(*overlapCk, *procs, *elems, *p, *iters, *lr, *modeFlag, cfg)
		return
	}

	var rs []int
	for r := 2; r <= *rmax; r *= 2 {
		rs = append(rs, r)
	}
	fmt.Printf("Fig. 6 (left): loss vs ranks on a %d^3-element p=%d mesh, %s model (%d parameters)\n\n",
		*elems, *p, cfg.Name, cfg.ParamCount())
	rows, err := experiments.Fig6Left(*elems, *p, rs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	experiments.RenderFig6Left(os.Stdout, rows)
	fmt.Println("\nConsistent NMP losses match the R=1 target; standard NMP deviates with R.")

	if *train {
		fmt.Printf("\nFig. 6 (right): training curves, R=1 target vs R=%d standard/consistent, %d iterations\n\n",
			*rT, *iters)
		res, err := experiments.Fig6Right(*elems, *p, *rT, *iters, cfg, *lr)
		if err != nil {
			log.Fatal(err)
		}
		experiments.RenderFig6Right(os.Stdout, res, 12)
		fmt.Println("\nThe consistent curve retraces the R=1 optimization; the standard curve drifts.")
	}
}

// runArtifacts is everything rank 0 keeps from one seeded training run
// for the bitwise comparison.
type runArtifacts struct {
	losses     []float64
	modelBytes []byte // SaveModel: architecture + final parameters
	ckptBytes  []byte // SaveTrainingState: model + optimizer moments + step
}

// runTransportCheck trains the same seeded model on the selected
// transports and asserts the trajectories are bitwise identical: the
// paper's consistency property must survive the process boundary, not
// just the partitioning.
func runTransportCheck(which string, procs, elems, p, iters int, lr float64, modeName string, cfg meshgnn.Config) {
	switch which {
	case "inproc", "procs", "both":
	default:
		log.Fatalf("unknown -transport %q (want inproc, procs, or both)", which)
	}
	if iters < 1 {
		log.Fatalf("-iters must be >= 1 for -transport, got %d", iters)
	}
	mode, err := parseMode(modeName)
	if err != nil {
		log.Fatal(err)
	}
	m, err := meshgnn.NewMesh(elems, elems, elems, p, meshgnn.FullyPeriodic)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := meshgnn.NewSystem(m, procs, meshgnn.Blocks)
	if err != nil {
		log.Fatal(err)
	}

	// The seeded training every rank executes. Model init, data, and
	// shuffling derive from fixed seeds, so process ranks reconstruct the
	// identical state without any out-of-band exchange.
	field := meshgnn.TaylorGreen{V0: 1, L: 1, Nu: 0.01}
	run := func(kind meshgnn.TransportKind) (runArtifacts, error) {
		var art runArtifacts
		err := sys.RunOn(kind, mode, func(r *meshgnn.Rank) error {
			mdl, err := meshgnn.NewModel(cfg)
			if err != nil {
				return err
			}
			trainer := meshgnn.NewTrainer(mdl, meshgnn.NewAdam(lr))
			x := r.Sample(field, 0)
			losses := make([]float64, 0, iters)
			for it := 0; it < iters; it++ {
				losses = append(losses, trainer.Step(r.Ctx, x, x))
			}
			if r.ID() != 0 {
				return nil
			}
			art.losses = losses
			var mb, cb bytes.Buffer
			if err := meshgnn.SaveModel(&mb, mdl); err != nil {
				return err
			}
			if err := meshgnn.SaveTrainingState(&cb, trainer); err != nil {
				return err
			}
			art.modelBytes = mb.Bytes()
			art.ckptBytes = cb.Bytes()
			return nil
		})
		return art, err
	}

	// A re-exec'd worker only participates in the socket run; the
	// coordinator owns the in-process run and the comparison.
	if meshgnn.IsWorker() {
		if _, err := run(meshgnn.Processes); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("cross-transport consistency: %d^3-element p=%d mesh, R=%d, %s exchange, %s model, %d iterations\n",
		elems, p, procs, mode, cfg.Name, iters)

	var inproc, sock runArtifacts
	haveIn, haveSock := false, false
	if which == "inproc" || which == "both" {
		if inproc, err = run(meshgnn.InProcess); err != nil {
			log.Fatal(err)
		}
		haveIn = true
		fmt.Printf("  in-process ranks : final loss %.12g after %d steps\n",
			inproc.losses[len(inproc.losses)-1], len(inproc.losses))
	}
	if which == "procs" || which == "both" {
		if sock, err = run(meshgnn.Processes); err != nil {
			log.Fatal(err)
		}
		haveSock = true
		fmt.Printf("  socket processes : final loss %.12g after %d steps\n",
			sock.losses[len(sock.losses)-1], len(sock.losses))
	}
	if !haveIn || !haveSock {
		return // single-transport debugging run: the trace above is the output
	}

	lossDiff, lossBits := maxAbsDiff(inproc.losses, sock.losses)
	paramDiff, paramBits := compareModels(inproc.modelBytes, sock.modelBytes)
	ckptEqual := bytes.Equal(inproc.ckptBytes, sock.ckptBytes)

	fmt.Printf("\nmax |Δ| losses      = %g (%d differing bit patterns of %d)\n",
		lossDiff, lossBits, len(inproc.losses))
	fmt.Printf("max |Δ| parameters  = %g (%d differing bit patterns)\n", paramDiff, paramBits)
	fmt.Printf("checkpoint bytes    : %d vs %d, identical=%v\n",
		len(inproc.ckptBytes), len(sock.ckptBytes), ckptEqual)

	if lossBits != 0 || paramBits != 0 || !ckptEqual {
		log.Fatal("TRANSPORT INCONSISTENCY: in-process and socket-process runs diverged")
	}
	fmt.Println("\nin-process and socket-process training are bitwise identical (losses, parameters, checkpoints).")
}

// runOverlapCheck trains the same seeded model with the synchronous and
// the overlapped (phased) NMP pipeline and asserts the trajectories are
// bitwise identical: overlapping halo communication with interior compute
// is a scheduling change, not an arithmetic one. The overlapped side is
// additionally run over the socket fabric, so one invocation pins the
// property on both transports.
func runOverlapCheck(which string, ranks, elems, p, iters int, lr float64, modeName string, cfg meshgnn.Config) {
	switch which {
	case "on", "off", "both":
	default:
		log.Fatalf("unknown -overlap %q (want on, off, or both)", which)
	}
	if iters < 1 {
		log.Fatalf("-iters must be >= 1 for -overlap, got %d", iters)
	}
	mode, err := parseMode(modeName)
	if err != nil {
		log.Fatal(err)
	}
	m, err := meshgnn.NewMesh(elems, elems, elems, p, meshgnn.FullyPeriodic)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := meshgnn.NewSystem(m, ranks, meshgnn.Blocks)
	if err != nil {
		log.Fatal(err)
	}

	field := meshgnn.TaylorGreen{V0: 1, L: 1, Nu: 0.01}
	run := func(kind meshgnn.TransportKind, overlap bool) (runArtifacts, error) {
		runCfg := cfg
		runCfg.Overlap = overlap
		var art runArtifacts
		err := sys.RunOn(kind, mode, func(r *meshgnn.Rank) error {
			mdl, err := meshgnn.NewModel(runCfg)
			if err != nil {
				return err
			}
			trainer := meshgnn.NewTrainer(mdl, meshgnn.NewAdam(lr))
			x := r.Sample(field, 0)
			losses := make([]float64, 0, iters)
			for it := 0; it < iters; it++ {
				losses = append(losses, trainer.Step(r.Ctx, x, x))
			}
			if r.ID() != 0 {
				return nil
			}
			art.losses = losses
			// The serialized Config records the Overlap knob, which
			// legitimately differs between the two pipelines; normalize
			// it before saving so checkpoint bytes — parameters and
			// optimizer moments included — must match exactly.
			mdl.SetOverlap(false)
			var mb, cb bytes.Buffer
			if err := meshgnn.SaveModel(&mb, mdl); err != nil {
				return err
			}
			if err := meshgnn.SaveTrainingState(&cb, trainer); err != nil {
				return err
			}
			art.modelBytes = mb.Bytes()
			art.ckptBytes = cb.Bytes()
			return nil
		})
		return art, err
	}

	fmt.Printf("overlap consistency: %d^3-element p=%d mesh, R=%d goroutine ranks, %s exchange, %s model, %d iterations\n",
		elems, p, ranks, mode, cfg.Name, iters)

	if which != "both" {
		art, err := run(meshgnn.InProcess, which == "on")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  overlap=%s : final loss %.12g after %d steps\n",
			which, art.losses[len(art.losses)-1], len(art.losses))
		return
	}

	sync, err := run(meshgnn.InProcess, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  synchronous (inproc)  : final loss %.12g after %d steps\n",
		sync.losses[len(sync.losses)-1], len(sync.losses))
	over, err := run(meshgnn.InProcess, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  overlapped  (inproc)  : final loss %.12g\n", over.losses[len(over.losses)-1])
	overSock, err := run(meshgnn.Sockets, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  overlapped  (sockets) : final loss %.12g\n", overSock.losses[len(overSock.losses)-1])

	bad := false
	for _, cmp := range []struct {
		name string
		art  runArtifacts
	}{
		{"overlapped (inproc)", over},
		{"overlapped (sockets)", overSock},
	} {
		lossDiff, lossBits := maxAbsDiff(sync.losses, cmp.art.losses)
		paramDiff, paramBits := compareModels(sync.modelBytes, cmp.art.modelBytes)
		ckptEqual := bytes.Equal(sync.ckptBytes, cmp.art.ckptBytes)
		fmt.Printf("\n%s vs synchronous:\n", cmp.name)
		fmt.Printf("  max |Δ| losses      = %g (%d differing bit patterns of %d)\n",
			lossDiff, lossBits, len(sync.losses))
		fmt.Printf("  max |Δ| parameters  = %g (%d differing bit patterns)\n", paramDiff, paramBits)
		fmt.Printf("  checkpoint bytes    : %d vs %d, identical=%v\n",
			len(sync.ckptBytes), len(cmp.art.ckptBytes), ckptEqual)
		if lossBits != 0 || paramBits != 0 || !ckptEqual {
			bad = true
		}
	}
	if bad {
		log.Fatal("OVERLAP INCONSISTENCY: overlapped and synchronous training diverged")
	}
	fmt.Println("\noverlapped and synchronous training are bitwise identical (losses, parameters, checkpoints — both transports).")
}

// maxAbsDiff returns the largest |a-b| and the count of elements whose
// float64 bit patterns differ (so opposite-sign NaNs or -0 vs +0 cannot
// hide behind a zero numeric difference).
func maxAbsDiff(a, b []float64) (float64, int) {
	if len(a) != len(b) {
		return math.Inf(1), len(a) + len(b)
	}
	var maxD float64
	bits := 0
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			bits++
		}
		if d := math.Abs(a[i] - b[i]); d > maxD {
			maxD = d
		}
	}
	return maxD, bits
}

// compareModels decodes two serialized models and compares every
// parameter tensor element-wise.
func compareModels(a, b []byte) (float64, int) {
	ma, errA := meshgnn.LoadModel(bytes.NewReader(a))
	mb, errB := meshgnn.LoadModel(bytes.NewReader(b))
	if errA != nil || errB != nil {
		log.Fatalf("decoding checkpoints for comparison: %v / %v", errA, errB)
	}
	pa, pb := ma.Params(), mb.Params()
	if len(pa) != len(pb) {
		return math.Inf(1), len(pa) + len(pb)
	}
	var maxD float64
	bits := 0
	for i := range pa {
		d, n := maxAbsDiff(pa[i].W.Data, pb[i].W.Data)
		if d > maxD {
			maxD = d
		}
		bits += n
	}
	return maxD, bits
}

func parseMode(s string) (meshgnn.ExchangeMode, error) {
	switch s {
	case "a2a":
		return meshgnn.AllToAll, nil
	case "na2a":
		return meshgnn.NeighborAllToAll, nil
	case "sendrecv":
		return meshgnn.SendRecv, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func configByName(name string) (gnn.Config, error) {
	switch name {
	case "small":
		return gnn.SmallConfig(), nil
	case "large":
		return gnn.LargeConfig(), nil
	}
	return gnn.Config{}, fmt.Errorf("unknown model %q (want small or large)", name)
}
