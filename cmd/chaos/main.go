// Command chaos is the fault-injection harness: it drives training and
// serving workloads through deterministic fault schedules
// (comm.FaultTransport) and asserts the library's documented failure
// contract on every one —
//
//   - a clean, classified error (errors.Is ErrPeerDown / ErrTimeout /
//     ErrCorruptFrame / ErrFault, or a loud tag-mismatch) whenever a
//     fault corrupts the run;
//   - bounded recovery: every scenario finishes within its watchdog
//     deadline — a fault may fail a run, it may never hang it;
//   - never a wrong answer passed as correct: a run that reports success
//     must produce results bitwise-identical to the fault-free reference;
//   - the process survives: rank panics are recovered into errors, the
//     serving frontend fails fast with the root cause, and Close stays
//     deterministic.
//
// Usage:
//
//	chaos [-seed 1] [-seeds 6] [-elems 3] [-iters 4] [-v]
//
// The named scenarios (delays, peer death, dropped and duplicated sends,
// on-the-wire corruption on both fabrics, a rank panic mid-serving) run
// first; then -seeds random schedules drawn from the base seed sweep the
// training loop. Exits non-zero on the first violated assertion.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"strings"
	"sync"
	"time"

	"meshgnn"
	"meshgnn/internal/comm"
)

// watchdogTimeout bounds every scenario: the "never a hang" assertion.
const watchdogTimeout = 60 * time.Second

// commTimeout is the receive deadline armed in faulted runs, so a rank
// whose peer died unwinds quickly instead of eating the watchdog budget.
const commTimeout = 2 * time.Second

var verbose = flag.Bool("v", false, "log every scenario outcome")

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaos: ")
	var (
		seed  = flag.Int64("seed", 1, "base seed for the random-schedule sweep")
		seeds = flag.Int("seeds", 6, "number of random schedules to sweep")
		elems = flag.Int("elems", 3, "elements per axis of the cubic test mesh")
		iters = flag.Int("iters", 4, "training iterations per run")
	)
	flag.Parse()

	h, err := newHarness(*elems, *iters)
	if err != nil {
		log.Fatal(err)
	}

	scenarios := []struct {
		name string
		run  func() error
	}{
		{"baseline", h.baseline},
		{"delay-bitwise", h.delayBitwise},
		{"corrupt-inproc", h.corruptInproc},
		{"corrupt-sockets", h.corruptSockets},
		{"peer-down", h.peerDown},
		{"drop-timeout", h.dropTimeout},
		{"dup-mispair", h.dupMispair},
		{"serve-rank-panic", h.serveRankPanic},
	}
	for _, sc := range scenarios {
		if err := watchdog(sc.name, sc.run); err != nil {
			log.Fatalf("%s: %v", sc.name, err)
		}
		fmt.Printf("PASS %s\n", sc.name)
	}
	for i := 0; i < *seeds; i++ {
		s := *seed + int64(i)
		name := fmt.Sprintf("sweep-seed-%d", s)
		if err := watchdog(name, func() error { return h.sweep(s) }); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("PASS %s\n", name)
	}
	fmt.Printf("chaos: all %d scenarios + %d seeds honored the failure contract\n",
		len(scenarios), *seeds)
}

// watchdog runs fn with the no-hang bound. A scenario that exceeds it is
// the one outcome the contract forbids unconditionally, so the process
// exits immediately (the stuck goroutine is abandoned).
func watchdog(name string, fn func() error) error {
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-time.After(watchdogTimeout):
		log.Fatalf("%s: HANG: scenario exceeded %v", name, watchdogTimeout)
		return nil
	}
}

// classified reports whether err carries one of the documented failure
// classes: a sentinel in the chain, or the transports' loud tag-mismatch
// diagnostic (the channel fabric's integrity check).
func classified(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, meshgnn.ErrPeerDown) ||
		errors.Is(err, meshgnn.ErrTimeout) ||
		errors.Is(err, meshgnn.ErrCorruptFrame) ||
		errors.Is(err, meshgnn.ErrFault) ||
		strings.Contains(err.Error(), "expected tag")
}

// harness owns the shared test system and the fault-free references every
// bitwise assertion compares against.
type harness struct {
	sys    *meshgnn.System
	model  *meshgnn.Model
	inputs []*meshgnn.Matrix
	iters  int

	refLoss  []float64         // fault-free per-iteration losses (rank 0)
	refPreds []*meshgnn.Matrix // fault-free served predictions
}

func newHarness(elems, iters int) (*harness, error) {
	m, err := meshgnn.NewMesh(elems, elems, elems, 2, meshgnn.FullyPeriodic)
	if err != nil {
		return nil, err
	}
	sys, err := meshgnn.NewSystem(m, 2, meshgnn.Slabs)
	if err != nil {
		return nil, err
	}
	model, err := meshgnn.NewModel(meshgnn.SmallConfig())
	if err != nil {
		return nil, err
	}
	f := meshgnn.TaylorGreen{V0: 1, L: 1, Nu: 0.01}
	inputs := make([]*meshgnn.Matrix, sys.Ranks)
	for r := range inputs {
		inputs[r] = meshgnn.SampleField(f, sys.Locals[r], 0.25)
	}
	return &harness{sys: sys, model: model, inputs: inputs, iters: iters}, nil
}

// train runs the seeded training loop under the given wrapper and returns
// rank 0's per-iteration losses. Ranks arm the chaos receive deadline so
// faulted runs unwind instead of hanging.
func (h *harness) train(wrap func(meshgnn.Transport) meshgnn.Transport) ([]float64, error) {
	losses := make([]float64, h.iters)
	err := h.sys.RunOnWith(meshgnn.InProcess, meshgnn.NeighborAllToAll, wrap, func(r *meshgnn.Rank) error {
		return h.trainRank(r, losses)
	})
	return losses, err
}

func (h *harness) trainSockets(wrap func(meshgnn.Transport) meshgnn.Transport) ([]float64, error) {
	losses := make([]float64, h.iters)
	err := h.sys.RunOnWith(meshgnn.Sockets, meshgnn.NeighborAllToAll, wrap, func(r *meshgnn.Rank) error {
		return h.trainRank(r, losses)
	})
	return losses, err
}

func (h *harness) trainRank(r *meshgnn.Rank, losses []float64) error {
	r.SetCommTimeout(commTimeout)
	model, err := meshgnn.NewModel(meshgnn.SmallConfig())
	if err != nil {
		return err
	}
	trainer := meshgnn.NewTrainer(model, meshgnn.NewAdam(1e-3))
	x := h.inputs[r.ID()]
	for i := 0; i < h.iters; i++ {
		loss := trainer.Step(r.Ctx, x, x)
		if r.ID() == 0 {
			losses[i] = loss
		}
	}
	return nil
}

// baseline records the fault-free references: the training loss trace and
// the served predictions every bitwise assertion compares against.
func (h *harness) baseline() error {
	losses, err := h.train(nil)
	if err != nil {
		return fmt.Errorf("fault-free training failed: %w", err)
	}
	h.refLoss = losses
	preds, err := h.sys.Predict(meshgnn.NeighborAllToAll, h.model, h.inputs)
	if err != nil {
		return fmt.Errorf("fault-free serving failed: %w", err)
	}
	h.refPreds = preds
	return nil
}

func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// delayBitwise: injected delays are pure jitter — the run must succeed
// with a loss trace bitwise-identical to the fault-free reference.
func (h *harness) delayBitwise() error {
	plan := meshgnn.NewFaultPlan().
		Add(0, meshgnn.FaultEvent{AfterOps: 3, Kind: meshgnn.FaultDelay, Peer: -1, Delay: 2 * time.Millisecond}).
		Add(1, meshgnn.FaultEvent{AfterOps: 17, Kind: meshgnn.FaultDelay, Peer: -1, Delay: 5 * time.Millisecond}).
		Add(1, meshgnn.FaultEvent{AfterOps: 40, Kind: meshgnn.FaultDelay, Peer: -1, Delay: time.Millisecond})
	losses, err := h.train(plan.Wrap)
	if err != nil {
		return fmt.Errorf("delay-only run failed: %w", err)
	}
	if !sameBits(losses, h.refLoss) {
		return fmt.Errorf("delay-only run changed the loss trace: %v != %v", losses, h.refLoss)
	}
	return nil
}

// corruptInproc: on the channel fabric a corrupted message is rejected by
// the receiver's tag check — a loud mispair diagnostic, never delivered
// data.
func (h *harness) corruptInproc() error {
	plan := meshgnn.NewFaultPlan().
		Add(1, meshgnn.FaultEvent{AfterOps: 10, Kind: meshgnn.FaultCorruptFrame, Peer: -1, Bit: 7})
	_, err := h.train(plan.Wrap)
	if !classified(err) {
		return fmt.Errorf("corrupted message not rejected with a classified error, got: %v", err)
	}
	logf("corrupt-inproc error: %v", err)
	return nil
}

// corruptSockets: on the wire a flipped bit must fail the CRC-32C check
// on the receiving rank — an ErrCorruptFrame diagnostic, never data.
func (h *harness) corruptSockets() error {
	plan := meshgnn.NewFaultPlan().
		Add(1, meshgnn.FaultEvent{AfterOps: 10, Kind: meshgnn.FaultCorruptFrame, Peer: -1, Bit: 133})
	_, err := h.trainSockets(plan.Wrap)
	if err == nil || !errors.Is(err, meshgnn.ErrCorruptFrame) {
		return fmt.Errorf("flipped wire bit not rejected as ErrCorruptFrame, got: %v", err)
	}
	logf("corrupt-sockets error: %v", err)
	return nil
}

// peerDown: a peer marked dead fails operations touching it with
// ErrPeerDown, and the run ends with that class within the deadline.
func (h *harness) peerDown() error {
	plan := meshgnn.NewFaultPlan().
		Add(0, meshgnn.FaultEvent{AfterOps: 12, Kind: meshgnn.FaultPeerDown, Peer: 1})
	start := time.Now()
	_, err := h.train(plan.Wrap)
	if err == nil || !errors.Is(err, meshgnn.ErrPeerDown) {
		return fmt.Errorf("dead peer not reported as ErrPeerDown, got: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 6*commTimeout {
		return fmt.Errorf("recovery took %v, want bounded by the %v receive deadline", elapsed, commTimeout)
	}
	logf("peer-down error: %v", err)
	return nil
}

// dropTimeout: a swallowed send leaves its receiver waiting; with a
// receive deadline armed the wait ends in ErrTimeout, not a hang.
func (h *harness) dropTimeout() error {
	plan := comm.NewFaultPlan().
		Add(0, comm.FaultEvent{AfterOps: 0, Kind: comm.FaultDropSend, Peer: 1})
	err := comm.RunWith(2, plan.Wrap, func(c *comm.Comm) error {
		c.SetRecvTimeout(300 * time.Millisecond)
		if c.Rank() == 0 {
			c.Send(1, comm.TagUser, []float64{1, 2, 3}) // swallowed
		} else {
			c.Recv(0, comm.TagUser) // nothing arrives
		}
		return nil
	})
	if err == nil || !errors.Is(err, comm.ErrTimeout) {
		return fmt.Errorf("dropped send not surfaced as ErrTimeout, got: %v", err)
	}
	logf("drop-timeout error: %v", err)
	return nil
}

// dupMispair: a duplicated send answers the receiver's next receive, which
// fails the tag check on distinctly-tagged traffic — loud, not silent.
func (h *harness) dupMispair() error {
	plan := comm.NewFaultPlan().
		Add(0, comm.FaultEvent{AfterOps: 0, Kind: comm.FaultDupSend, Peer: 1})
	err := comm.RunWith(2, plan.Wrap, func(c *comm.Comm) error {
		c.SetRecvTimeout(time.Second)
		if c.Rank() == 0 {
			c.Send(1, comm.TagUser, []float64{1}) // duplicated
			c.Send(1, comm.TagUser+1, []float64{2})
		} else {
			c.Recv(0, comm.TagUser)
			c.Recv(0, comm.TagUser+1) // gets the duplicate instead
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "expected tag") {
		return fmt.Errorf("duplicated send not caught by the tag check, got: %v", err)
	}
	logf("dup-mispair error: %v", err)
	return nil
}

// serveRankPanic: a serving rank that panics mid-request must fail that
// request with the injected class, fail the server fast on later calls,
// keep Close deterministic — and never crash the process. The trigger op
// is calibrated from a fault-free serving run (op counts are
// deterministic), so the panic lands inside the second request.
func (h *harness) serveRankPanic() error {
	ops, firstPred, err := h.calibrateServing()
	if err != nil {
		return err
	}
	if !sameBits(firstPred[0].Data, h.refPreds[0].Data) {
		return fmt.Errorf("calibration predict differs from fault-free reference")
	}

	plan := meshgnn.NewFaultPlan().
		Add(1, meshgnn.FaultEvent{AfterOps: ops, Kind: meshgnn.FaultPanic, Peer: -1})
	srv, err := h.sys.ServeWith(meshgnn.InProcess, meshgnn.NeighborAllToAll, h.model,
		meshgnn.ServeOptions{RecvTimeout: commTimeout, WrapTransport: plan.Wrap})
	if err != nil {
		return err
	}
	defer srv.Close()

	got, err := srv.Predict(h.inputs)
	if err != nil {
		return fmt.Errorf("first request (before the fault) failed: %w", err)
	}
	for r := range got {
		if !sameBits(got[r].Data, h.refPreds[r].Data) {
			return fmt.Errorf("rank %d: pre-fault prediction differs from reference", r)
		}
	}

	if _, err = srv.Predict(h.inputs); err == nil || !errors.Is(err, meshgnn.ErrFault) {
		return fmt.Errorf("faulted request did not surface the injected panic, got: %v", err)
	}
	logf("serve-rank-panic request error: %v", err)

	// The server is terminal now: later calls fail fast with the root
	// cause instead of re-entering the desynchronized fabric.
	start := time.Now()
	if _, err = srv.Predict(h.inputs); err == nil || !classified(err) {
		return fmt.Errorf("post-fault request not rejected with the root cause, got: %v", err)
	}
	if elapsed := time.Since(start); elapsed > commTimeout {
		return fmt.Errorf("post-fault rejection took %v, want fast-fail", elapsed)
	}
	if err = srv.Close(); err == nil {
		return fmt.Errorf("Close after a fatal rank returned nil")
	}
	logf("serve-rank-panic close error: %v", err)
	return nil
}

// calibrateServing serves one fault-free request through instrumented
// (but fault-less) transports and returns rank 1's op count afterwards —
// the deterministic trigger point for "during the second request".
func (h *harness) calibrateServing() (int, []*meshgnn.Matrix, error) {
	var mu sync.Mutex
	fts := make(map[int]*meshgnn.FaultTransport)
	wrap := func(t meshgnn.Transport) meshgnn.Transport {
		ft := comm.NewFaultTransport(t, nil)
		mu.Lock()
		fts[t.Rank()] = ft
		mu.Unlock()
		return ft
	}
	srv, err := h.sys.ServeWith(meshgnn.InProcess, meshgnn.NeighborAllToAll, h.model,
		meshgnn.ServeOptions{RecvTimeout: commTimeout, WrapTransport: wrap})
	if err != nil {
		return 0, nil, err
	}
	preds, err := srv.Predict(h.inputs)
	if err != nil {
		srv.Close()
		return 0, nil, fmt.Errorf("calibration predict: %w", err)
	}
	if err := srv.Close(); err != nil {
		return 0, nil, fmt.Errorf("calibration close: %w", err)
	}
	ft := fts[1]
	if ft == nil {
		return 0, nil, fmt.Errorf("calibration captured no rank-1 transport")
	}
	logf("calibration: rank 1 performed %d ops for setup + one predict", ft.Ops())
	return ft.Ops(), preds, nil
}

// sweep trains under a random (but deterministic per seed) schedule of
// detectable faults and asserts the universal contract: the run either
// succeeds with a bitwise-identical loss trace, or fails with a
// classified error — and always within the watchdog bound.
func (h *harness) sweep(seed int64) error {
	plan := meshgnn.RandomFaultPlan(seed, h.sys.Ranks, 3, 300)
	losses, err := h.train(plan.Wrap)
	switch {
	case err == nil:
		if !sameBits(losses, h.refLoss) {
			return fmt.Errorf("seed %d: run reported success with a diverged loss trace", seed)
		}
		logf("seed %d: clean run, bitwise-identical losses", seed)
	case classified(err):
		logf("seed %d: classified failure: %v", seed, err)
	default:
		return fmt.Errorf("seed %d: unclassified failure: %v", seed, err)
	}
	return nil
}

func logf(format string, args ...any) {
	if *verbose {
		log.Printf(format, args...)
	}
}
