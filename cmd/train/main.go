// Command train runs distributed-data-parallel training of a consistent
// mesh-based GNN on an analytic flow snapshot — the end-to-end workflow
// of the paper's Fig. 1 on a single host.
//
// Ranks are goroutines by default (-ranks N). With -procs N every rank is
// its own OS process: the command re-execs itself once per worker rank
// with the MESHGNN_RANK/MESHGNN_WORLD environment set, rank 0 coordinates
// in the launching process, and all ranks exchange halo and gradient
// traffic over Unix-domain sockets. The deterministic collectives make
// both modes produce bitwise-identical losses and parameters.
//
// The task maps the field at time t0 to the field at time t1 (set
// -t1 equal to -t0 for the paper's autoencoding demonstration). Training
// reports the consistent loss, which is invariant to the partitioning.
//
// Usage:
//
//	train [-elems 8] [-p 2] [-ranks 8 | -procs 8] [-mode na2a] [-model small]
//	      [-field tgv] [-iters 100] [-lr 1e-3] [-train-batch 1] [-verify]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"meshgnn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train: ")
	var (
		elems    = flag.Int("elems", 8, "elements per axis")
		p        = flag.Int("p", 2, "polynomial order")
		ranks    = flag.Int("ranks", 8, "number of goroutine ranks")
		procs    = flag.Int("procs", 0, "run this many OS-process ranks over sockets (overrides -ranks)")
		modeFlag = flag.String("mode", "na2a", "halo exchange: none, a2a, na2a, sendrecv")
		model    = flag.String("model", "small", "model configuration: small or large")
		fieldSel = flag.String("field", "tgv", "training data: tgv, shear, pulse")
		iters    = flag.Int("iters", 100, "training iterations")
		lr       = flag.Float64("lr", 1e-3, "Adam learning rate")
		t0       = flag.Float64("t0", 0, "input snapshot time")
		t1       = flag.Float64("t1", 0.05, "target snapshot time")
		verify   = flag.Bool("verify", false, "verify Eq. 2 consistency against an R=1 run before training")
		attn     = flag.Bool("attention", false, "use consistent attention layers instead of NMP")
		noise    = flag.Float64("noise", 0, "partition-consistent input noise sigma")
		saveTo   = flag.String("save", "", "write the trained model checkpoint to this path")
		loadFrom = flag.String("load", "", "initialize the model from this checkpoint")
		threads  = flag.Int("threads", 0, "intra-rank worker threads per kernel (0 = GOMAXPROCS, 1 = serial)")
		det      = flag.Bool("deterministic", true, "fixed-schedule reductions: results bitwise-identical for any -threads")
		overlap  = flag.Bool("overlap", false, "phased NMP pipeline: overlap halo communication with interior compute (bitwise-identical results; no-op with -attention)")
		batchSz  = flag.Int("train-batch", 1, "samples per optimizer step, stacked as row blocks (gradient bitwise-equal to sequential accumulation; requires NMP)")
	)
	flag.Parse()

	if *threads < 0 {
		log.Fatalf("-threads must be >= 0, got %d", *threads)
	}
	if *batchSz < 0 {
		log.Fatalf("-train-batch must be >= 0, got %d", *batchSz)
	}
	if *attn && *batchSz > 1 {
		log.Fatal("-train-batch > 1 requires the NMP processor (drop -attention)")
	}
	if *procs < 0 {
		log.Fatalf("-procs must be >= 0, got %d", *procs)
	}
	meshgnn.SetParallelism(*threads, *det)
	mode, err := parseMode(*modeFlag)
	if err != nil {
		log.Fatal(err)
	}
	transport := meshgnn.InProcess
	nRanks := *ranks
	if *procs > 0 {
		transport = meshgnn.Processes
		nRanks = *procs
	}
	// A -procs worker re-executes this entire command line; it must stay
	// silent (the coordinator owns stdout) and skip coordinator-only
	// work, but follow the identical setup path so all ranks agree.
	worker := meshgnn.IsWorker()
	say := func(format string, args ...any) {
		if !worker {
			fmt.Printf(format, args...)
		}
	}
	cfg := meshgnn.SmallConfig()
	if *model == "large" {
		cfg = meshgnn.LargeConfig()
	}
	cfg.Attention = *attn
	cfg.Overlap = *overlap
	cfg.TrainBatch = *batchSz
	// Parallelism is configured once, above, via SetParallelism; the
	// Config knob stays zero so model construction (and checkpoint
	// loading) cannot re-apply a second, divergent setting.
	f, err := fieldByName(*fieldSel)
	if err != nil {
		log.Fatal(err)
	}

	m, err := meshgnn.NewMesh(*elems, *elems, *elems, *p, meshgnn.FullyPeriodic)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := meshgnn.NewSystem(m, nRanks, meshgnn.Blocks)
	if err != nil {
		log.Fatal(err)
	}
	effThreads, _ := meshgnn.Parallelism()
	overlapLabel := "sync"
	if *overlap {
		overlapLabel = "overlapped"
	}
	say("mesh %d^3 elements p=%d (%d nodes), %d ranks (%s transport), %s exchange (%s), %s model (%d params), %d intra-rank threads\n",
		*elems, *p, m.NumNodes(), nRanks, transport, mode, overlapLabel, cfg.Name, cfg.ParamCount(), effThreads)
	if *batchSz > 1 {
		say("batched training: B=%d time-shifted samples per optimizer step (row-block accumulation)\n", *batchSz)
	}

	if *verify && !worker {
		diff, err := meshgnn.VerifyConsistency(sys, cfg, mode, f, *t0)
		if err != nil {
			log.Fatal(err)
		}
		say("Eq. 2 consistency check: max |Y(R=%d) - Y(R=1)| = %.3g\n", nRanks, diff)
	}

	var checkpoint []byte
	if *loadFrom != "" {
		var err error
		if checkpoint, err = os.ReadFile(*loadFrom); err != nil {
			log.Fatal(err)
		}
		say("initialized from checkpoint %s (%d bytes)\n", *loadFrom, len(checkpoint))
	}

	// Rank 0 always runs in this process (both transports), so capturing
	// its results in the closure works across goroutine and process
	// ranks alike.
	var curve []float64
	var saved []byte
	var timing meshgnn.StepTiming
	err = sys.RunOn(transport, mode, func(r *meshgnn.Rank) error {
		var mdl *meshgnn.Model
		var err error
		if checkpoint != nil {
			mdl, err = meshgnn.LoadModel(bytes.NewReader(checkpoint))
			if err == nil {
				mdl.SetOverlap(*overlap) // the flag, not the checkpoint, decides
			}
		} else {
			mdl, err = meshgnn.NewModel(cfg)
		}
		if err != nil {
			return err
		}
		trainer := meshgnn.NewTrainer(mdl, meshgnn.NewAdam(*lr))
		if *batchSz > 1 {
			// Checkpoint-loaded models carry the checkpoint's Config; the
			// flag, not the checkpoint, decides the batching.
			trainer.Batch = *batchSz
		}
		tm := trainer.EnableTiming()
		var ds meshgnn.Dataset
		// With -train-batch B the dataset holds B time-shifted snapshot
		// pairs so a full epoch is one row-block stacked optimizer step.
		// B=1 reproduces the original single-pair dataset exactly.
		nSamples := *batchSz
		if nSamples < 1 {
			nSamples = 1
		}
		shift := *t1 - *t0
		if shift == 0 {
			shift = 0.05 // autoencoding runs still need distinct samples
		}
		for b := 0; b < nSamples; b++ {
			d := float64(b) * shift
			ds.Add(r.Sample(f, *t0+d), r.Sample(f, *t1+d))
		}
		epochLosses := trainer.Fit(r.Ctx, &ds, meshgnn.FitOptions{
			Epochs:      *iters,
			ShuffleSeed: 1,
			NoiseSigma:  *noise,
			NoiseSeed:   2,
		})
		if r.ID() != 0 {
			return nil
		}
		curve = epochLosses
		timing = *tm
		if *saveTo != "" {
			var buf bytes.Buffer
			if err := meshgnn.SaveModel(&buf, mdl); err != nil {
				return err
			}
			saved = buf.Bytes()
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if worker {
		return // the coordinator reports
	}
	if *saveTo != "" {
		if err := os.WriteFile(*saveTo, saved, 0o644); err != nil {
			log.Fatal(err)
		}
		say("checkpoint written to %s (%d bytes)\n", *saveTo, len(saved))
	}
	step := len(curve) / 10
	if step == 0 {
		step = 1
	}
	fmt.Println("\niteration  consistent-loss")
	for it := 0; it < len(curve); it += step {
		fmt.Printf("%9d  %.8f\n", it+1, curve[it])
	}
	fmt.Printf("%9d  %.8f\n", len(curve), curve[len(curve)-1])
	fmt.Printf("\nfinal loss %.3g (reduced %.1fx from iteration 1)\n",
		curve[len(curve)-1], curve[0]/curve[len(curve)-1])

	if timing.Steps > 0 {
		n := float64(timing.Steps)
		ms := func(d time.Duration) float64 { return d.Seconds() * 1e3 / n }
		fmt.Printf("\nper-step phase breakdown (rank 0, avg over %d steps, %s pipeline):\n", timing.Steps, overlapLabel)
		fmt.Printf("  forward   %8.3f ms\n", ms(timing.Forward))
		fmt.Printf("  halo      %8.3f ms  (exposed %.3f ms — comm not hidden by compute)\n",
			ms(timing.Halo), ms(timing.HaloExposed))
		fmt.Printf("  loss      %8.3f ms\n", ms(timing.Loss))
		fmt.Printf("  backward  %8.3f ms\n", ms(timing.Backward))
		fmt.Printf("  allreduce %8.3f ms\n", ms(timing.AllReduce))
		fmt.Printf("  optimizer %8.3f ms\n", ms(timing.Optimizer))
		fmt.Printf("  total     %8.3f ms\n", ms(timing.Total()))
	}
}

func parseMode(s string) (meshgnn.ExchangeMode, error) {
	switch s {
	case "none":
		return meshgnn.NoExchange, nil
	case "a2a":
		return meshgnn.AllToAll, nil
	case "na2a":
		return meshgnn.NeighborAllToAll, nil
	case "sendrecv":
		return meshgnn.SendRecv, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func fieldByName(s string) (meshgnn.Field, error) {
	switch s {
	case "tgv":
		return meshgnn.TaylorGreen{V0: 1, L: 1, Nu: 0.01}, nil
	case "shear":
		return meshgnn.ShearLayer{U0: 1, Thickness: 0.08, Perturbation: 0.05, L: 1}, nil
	case "pulse":
		return meshgnn.GaussianPulse{Amplitude: 1, Sigma0: 0.15, Alpha: 0.05, Cx: 0.5, Cy: 0.5, Cz: 0.5}, nil
	}
	return nil, fmt.Errorf("unknown field %q", s)
}
