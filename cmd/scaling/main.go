// Command scaling regenerates the paper's weak-scaling evaluation:
// Table I (model settings), Fig. 7 (total training throughput and
// weak-scaling efficiency, 8–2048 ranks), and Fig. 8 (throughput of the
// consistent model relative to the inconsistent baseline).
//
// Two tiers are reported:
//
//   - projected: the Frontier machine model driven by exact partition
//     statistics at the paper's scale (default);
//   - measured (-measured): real goroutine-rank training iterations on
//     this host with wall-clock timing and per-iteration message counts.
//
// Usage:
//
//	scaling [-measured] [-rmax 2048] [-iters 3] [-calibrate]
//
// A third tier runs the measured trainer with real OS-process ranks over
// the socket transport (-procs N): the command re-execs itself once per
// worker rank (MESHGNN_RANK/MESHGNN_WORLD environment), rank 0
// coordinates, and the row reports wall time plus exact per-iteration
// traffic crossing the process boundary.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"meshgnn/internal/comm"
	"meshgnn/internal/experiments"
	"meshgnn/internal/gnn"
	"meshgnn/internal/parallel"
	"meshgnn/internal/perfmodel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scaling: ")
	var (
		measured  = flag.Bool("measured", false, "run the measured goroutine-rank tier instead of the projection")
		rmax      = flag.Int("rmax", 2048, "largest projected rank count (powers of two from 8)")
		iters     = flag.Int("iters", 3, "timed iterations per measured point")
		elems     = flag.Int("elems", 2, "elements per rank per axis for the measured tier")
		p         = flag.Int("p", 3, "polynomial order for the measured tier (paper: 5)")
		calibrate = flag.Bool("calibrate", false, "calibrate the machine model from a local kernel measurement")
		strong    = flag.Bool("strong", false, "also project a strong-scaling sweep (fixed 64^3-element mesh)")
		inference = flag.Bool("inference", false, "also project inference-only (forward pass) throughput")
		reduced   = flag.Bool("reduced", false, "also report the reduced-graph (coincident collapse) ablation")
		threads   = flag.Int("threads", 0, "intra-rank worker threads per kernel (0 = GOMAXPROCS, 1 = serial)")
		det       = flag.Bool("deterministic", true, "fixed-schedule reductions: results bitwise-identical for any -threads")
		procs     = flag.Int("procs", 0, "measure one point with this many OS-process ranks over sockets")
		procMode  = flag.String("procmode", "na2a", "halo exchange for -procs: none, a2a, na2a, sendrecv")
		overlap   = flag.Bool("overlap", false, "measured tiers: overlap halo communication with interior compute (bitwise-identical results)")
	)
	flag.Parse()
	if *threads < 0 {
		log.Fatalf("-threads must be >= 0, got %d", *threads)
	}
	parallel.Configure(*threads, *det)

	if *procs > 0 {
		runProcs(*p, *elems, *procs, *procMode, *iters, *overlap)
		return
	}

	fmt.Println("Table I: GNN model settings")
	fmt.Println()
	experiments.RenderTable1(os.Stdout, experiments.Table1())

	if *measured {
		runMeasured(*p, *elems, *iters, *overlap)
		return
	}

	machine := perfmodel.Frontier()
	if *calibrate {
		machine = calibrateMachine(machine)
	}
	var rs []int
	for r := 8; r <= *rmax; r *= 2 {
		rs = append(rs, r)
	}
	fmt.Printf("\nFig. 7 / Fig. 8 (projected on %s machine model): weak scaling, p=5 periodic mesh\n",
		machine.Name)
	pts, err := experiments.Fig7Frontier(machine, 5, rs,
		[]experiments.Loading{experiments.Loading256k(), experiments.Loading512k()},
		[]gnn.Config{gnn.SmallConfig(), gnn.LargeConfig()},
		experiments.DefaultModes())
	if err != nil {
		log.Fatal(err)
	}
	experiments.RenderFig7(os.Stdout, pts)
	fmt.Println("\nThe A2A rows collapse with R (dummy uniform buffers); N-A2A stays near the")
	fmt.Println("no-exchange baseline — the paper's Fig. 7/8 finding.")

	if *strong {
		fmt.Println("\nStrong scaling (extension): fixed 64^3-element p=5 periodic mesh, large model")
		fmt.Println()
		ss, err := experiments.StrongScaling(machine, 5, 64, rs, gnn.LargeConfig(),
			experiments.DefaultModes())
		if err != nil {
			log.Fatal(err)
		}
		experiments.RenderStrongScaling(os.Stdout, ss)
	}
	if *inference {
		fmt.Println("\nInference-only projection (extension): forward pass, 512k loading, large model")
		fmt.Println()
		inf, err := experiments.InferenceThroughput(machine, 5, experiments.Loading512k(),
			rs, gnn.LargeConfig(), experiments.DefaultModes())
		if err != nil {
			log.Fatal(err)
		}
		experiments.RenderInference(os.Stdout, inf)
	}
	if *reduced {
		fmt.Println("\nReduced-graph ablation (paper Fig. 3(c)): local coincident collapse savings")
		fmt.Println()
		rg, err := experiments.ReducedGraphAblation(5, 16, rs)
		if err != nil {
			log.Fatal(err)
		}
		experiments.RenderReducedGraph(os.Stdout, rg)
	}
}

// runProcs measures one weak-scaling point with real OS-process ranks:
// this process coordinates as rank 0 and re-execs itself for the workers.
func runProcs(p, elems, procs int, modeName string, iters int, overlap bool) {
	mode, err := comm.ParseExchangeMode(modeName)
	if err != nil {
		log.Fatal(err)
	}
	worker := comm.IsWorker()
	if !worker {
		fmt.Printf("\nFig. 7 (process tier): %d OS-process ranks over sockets, %d^3 elements/rank, p=%d, %s exchange (overlap=%v), %d iters\n\n",
			procs, elems, p, mode, overlap, iters)
	}
	cfg := gnn.SmallConfig()
	cfg.Overlap = overlap
	pt, err := experiments.MeasuredProcs(p, elems, procs, cfg, mode, iters)
	if err != nil {
		log.Fatal(err)
	}
	if worker {
		return
	}
	experiments.RenderMeasured(os.Stdout, []experiments.MeasuredPoint{pt})
}

// runMeasured executes the real distributed trainer across rank counts
// and exchange modes on this host, printing the per-iteration halo time
// and its exposed (unhidden) subset alongside throughput.
func runMeasured(p, elems, iters int, overlap bool) {
	fmt.Printf("\nFig. 7 (measured tier): real goroutine ranks, %d^3 elements/rank, p=%d, %d iters/point, %d intra-rank threads, overlap=%v\n",
		elems, p, iters, parallel.Threads(), overlap)
	fmt.Println("(single-host ranks time-share cores: compare the relative column, not absolute scaling)")
	fmt.Println()
	cfg := gnn.SmallConfig()
	cfg.Overlap = overlap
	pts, err := experiments.Fig7Measured(p, elems, []int{1, 2, 4, 8}, cfg,
		[]comm.ExchangeMode{comm.AllToAllMode, comm.NeighborAllToAll}, iters)
	if err != nil {
		log.Fatal(err)
	}
	experiments.RenderMeasured(os.Stdout, pts)
}

// calibrateMachine anchors the projection's compute rate to a measured
// local kernel time, scaled by a nominal CPU→GCD speedup.
func calibrateMachine(m perfmodel.Machine) perfmodel.Machine {
	const gcdSpeedup = 200 // nominal MI250X-GCD over one CPU core on small GEMMs
	cfg := gnn.SmallConfig()
	sec, _, nodes, err := measureLocal(cfg)
	if err != nil {
		log.Printf("calibration failed (%v); using defaults", err)
		return m
	}
	flops := perfmodel.ModelFlops(cfg, nodes, 3*nodes)
	cal := m.Calibrate(flops, sec, gcdSpeedup)
	fmt.Printf("\ncalibrated compute rate: %.3g flop/s per rank (measured %.3fs/iter on %d nodes)\n",
		cal.ComputeRate, sec, nodes)
	return cal
}

func measureLocal(cfg gnn.Config) (secPerIter float64, iters int, nodes int64, err error) {
	pts, err := experiments.Fig7Measured(3, 2, []int{1}, cfg, nil, 3)
	if err != nil {
		return 0, 0, 0, err
	}
	start := time.Now()
	_ = start
	return pts[0].SecPerIter, 3, pts[0].NodesPerRank, nil
}
