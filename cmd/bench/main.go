// Command bench runs the library's hot-path benchmarks — the forward GEMM,
// a full consistent NMP layer step, the end-to-end training step, and the
// compiled forward-only inference step — across a thread sweep, verifies
// the zero-allocation steady-state contract of the tensor/nn/gnn kernels
// (training and serving), measures the overlapped halo pipeline against
// the synchronous one on a multi-rank run (step time, halo time, and the
// exposed — not hidden behind compute — communication time), measures the
// inference serving tier (training forward vs engine step, request
// latency profile, single- and multi-rank, float64 and the float32
// serving twin), measures the batched serving tier (block-diagonal
// PredictBatch through the Server coalescer: throughput vs batch size
// against sequential Predicts on a latency-bound many-rank socket
// fabric), measures the concurrent serving tier (S independent serving
// sessions over one immutable compiled engine on a link-delay-emulated
// socket fabric: saturation throughput, tail latency under load, and the
// session-scaling efficiency the ratchet gates), measures the batched
// training tier (row-block StepBatch vs sequential Steps on a multi-rank
// socket fabric: per-sample amortization of the AllReduce, optimizer, and
// pack-invalidation overheads at bitwise-unchanged gradients), and writes
// a machine-readable JSON report (BENCH_PR10.json by default) so the
// performance trajectory is tracked across PRs.
//
// Requested sweep thread counts beyond runtime.NumCPU() are clamped (and
// the clamp printed): oversubscribed workers only time-slice against each
// other on the compute-bound kernels. Pass -oversubscribe to lift the cap
// and measure oversubscription deliberately. The nmp_layer / train_step /
// infer_step sweeps run with the garbage collector quiesced so background
// GC assists don't add run-to-run noise to the tracked numbers.
//
// Usage:
//
//	go run ./cmd/bench                 # full shapes, BENCH_PR10.json
//	go run ./cmd/bench -quick          # CI-sized shapes, 1 iteration
//	go run ./cmd/bench -oversubscribe  # sweep past NumCPU anyway
//	go run ./cmd/bench -baseline <ns>  # also report speedup vs a recorded
//	                                   # pre-PR train-step ns/op
//
// The process exits non-zero if any hot kernel allocates in steady state,
// the inference engine drifts bitwise from the training forward, or the
// float32 twin exceeds its relative-error gate, making it usable as a CI
// regression gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"meshgnn"
	"meshgnn/internal/comm"
	"meshgnn/internal/experiments"
	"meshgnn/internal/gnn"
	"meshgnn/internal/graph"
	"meshgnn/internal/mesh"
	"meshgnn/internal/nn"
	"meshgnn/internal/parallel"
	"meshgnn/internal/partition"
	"meshgnn/internal/tensor"
)

// BenchResult is one (benchmark, thread-count) measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	Threads     int     `json:"threads"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// OverlapPoint is one synchronous-vs-overlapped comparison of a
// multi-rank training run: the overlap-on/overlap-off speedup point plus
// the halo-time decomposition behind it.
type OverlapPoint struct {
	Ranks   int    `json:"ranks"`
	Mode    string `json:"mode"`
	Threads int    `json:"threads"`
	Iters   int    `json:"iters"`
	// SyncNsPerIter / OverlapNsPerIter are rank-0 wall times per training
	// iteration; Speedup is their ratio (>1 means overlap won).
	SyncNsPerIter    float64 `json:"sync_ns_per_iter"`
	OverlapNsPerIter float64 `json:"overlap_ns_per_iter"`
	Speedup          float64 `json:"speedup"`
	// Halo/Exposed are per-iteration seconds from the comm layer:
	// Exposed is the time the rank sat blocked on messages (the cost the
	// phased pipeline exists to hide).
	SyncHaloSec       float64 `json:"sync_halo_sec_per_iter"`
	SyncExposedSec    float64 `json:"sync_exposed_sec_per_iter"`
	OverlapHaloSec    float64 `json:"overlap_halo_sec_per_iter"`
	OverlapExposedSec float64 `json:"overlap_exposed_sec_per_iter"`
	// Oversubscribed marks a point whose goroutine ranks outnumber the
	// host's cores: the ranks time-slice one another, so the speedup
	// column measures scheduler pressure, not hidden communication — read
	// the exposed-time columns instead (BENCH_PR5 recorded 0.64x at R=4 on
	// a single-CPU host for exactly this reason).
	Oversubscribed bool `json:"oversubscribed,omitempty"`
}

// BatchedServingPoint is one batched-serving measurement: B coalesced
// requests fused into one block-diagonal collective evaluation through
// the Server admission queue, against the same server serving the same
// requests one at a time. Results are bitwise-identical either way, so
// the amortization column is a pure scheduling/communication win.
type BatchedServingPoint struct {
	Ranks            int     `json:"ranks"`
	Mode             string  `json:"mode"`
	Batch            int     `json:"batch"`
	Rounds           int     `json:"rounds"`
	LinkDelayUs      float64 `json:"link_delay_us"`
	NsPerReq         float64 `json:"ns_per_req"`
	ThroughputReqSec float64 `json:"throughput_req_per_sec"`
	// AmortizationVsB1 is NsPerReq(B=1) / NsPerReq(B): how much cheaper a
	// request gets by riding a fused batch. The B=8 entry carries the
	// ratcheted floor.
	AmortizationVsB1 float64 `json:"amortization_vs_b1"`
}

// BatchedTrainingPoint is one row-block batched-training measurement: B
// same-mesh samples stacked through one fused StepBatch against the same
// fabric training them with B sequential Steps. The accumulated gradient
// is bitwise-equal either way (the StepBatch oracle sweep asserts it), so
// the per-sample amortization — one gradient AllReduce, one optimizer
// step, one pack-cache invalidation per B samples instead of per sample —
// is the only axis.
type BatchedTrainingPoint struct {
	Ranks       int     `json:"ranks"`
	Mode        string  `json:"mode"`
	Batch       int     `json:"batch"`
	Steps       int     `json:"steps"`
	NsPerSample float64 `json:"ns_per_sample"`
	// AmortizationVsB1 is NsPerSample(B=1) / NsPerSample(B): how much
	// cheaper one training sample gets by riding a row-block batch. The
	// B=8 entry carries the ratcheted floor (cmd/ratchet
	// -train-batch-amort).
	AmortizationVsB1 float64 `json:"amortization_vs_b1"`
}

// ConcurrentServingPoint is one multi-session serving measurement: S
// independent serving sessions (each its own collective group and
// coalescing dispatcher) sharing one immutable compiled engine behind a
// single Server front door, saturated by closed-loop clients on a 2-rank
// socket fabric whose links carry an emulated wire latency
// (comm.LinkDelay). The emulation makes the fabric latency-bound the way
// a real multi-host interconnect is — on a latency-bound fabric the
// sessions overlap independent exchange rounds, which is the effect the
// session-scaling ratchet gates; on a purely compute-bound single-host
// fabric S sessions only time-slice the cores and scaling stays ~1x.
// Every per-sample result is checked bitwise against the single-session
// engine, so throughput is the only axis.
type ConcurrentServingPoint struct {
	Ranks       int     `json:"ranks"`
	Mode        string  `json:"mode"`
	Sessions    int     `json:"sessions"`
	Clients     int     `json:"clients"`
	LinkDelayUs float64 `json:"link_delay_us"`
	Requests    int64   `json:"requests"`
	MeasureSec  float64 `json:"measure_sec"`

	ThroughputReqSec float64 `json:"throughput_req_per_sec"`
	LatencyP50Ns     float64 `json:"latency_p50_ns"`
	LatencyP99Ns     float64 `json:"latency_p99_ns"`
	LatencyMaxNs     float64 `json:"latency_max_ns"`

	// ScalingVsS1 is ThroughputReqSec(S) / ThroughputReqSec(S=1): the
	// session-scaling efficiency. The S=4 entry carries the ratcheted
	// floor (cmd/ratchet -session-scaling).
	ScalingVsS1 float64 `json:"scaling_vs_s1"`
	// BitwiseEqual records that every served prediction matched the
	// single-session reference bit for bit; the run aborts if any
	// diverged, so a committed report always carries true.
	BitwiseEqual bool `json:"bitwise_equal"`
}

// Report is the schema of the bench report (BENCH_PR10.json).
type Report struct {
	GeneratedBy string `json:"generated_by"`
	Quick       bool   `json:"quick"`
	GoMaxProcs  int    `json:"go_max_procs"`
	NumCPU      int    `json:"num_cpu"`

	// Benches holds ns/step, allocs/step, and bytes/step per kernel and
	// thread count.
	Benches []BenchResult `json:"benches"`

	// Overlap holds the synchronous-vs-overlapped halo pipeline
	// comparison on multi-rank runs (exposed halo time and the
	// overlap-on/off step-time speedup).
	Overlap []OverlapPoint `json:"overlap"`

	// Inference holds the serving tier: the compiled forward-only engine
	// against the training Model.Forward on the same mesh (bitwise-equal
	// predictions, so the speedup is pure implementation), plus request
	// throughput and the latency profile.
	Inference []experiments.ServingPoint `json:"inference"`

	// BatchedServing holds the block-diagonal batching tier: request cost
	// vs batch size through the Server coalescer on a many-rank socket
	// fabric, where the batch-invariant halo message count and the single
	// fused dispatch amortize the per-request overhead.
	BatchedServing []BatchedServingPoint `json:"batched_serving"`

	// BatchedTraining holds the row-block batched-training tier: training
	// cost per sample vs batch size on a multi-rank socket fabric, where
	// one fused step amortizes the AllReduce, the optimizer, and the pack
	// invalidation over B samples with bitwise-unchanged gradients.
	BatchedTraining []BatchedTrainingPoint `json:"batched_training"`

	// ConcurrentServing holds the multi-session serving tier: saturation
	// throughput and tail latency vs session count over one shared
	// immutable compiled engine on the link-delay-emulated socket fabric.
	ConcurrentServing []ConcurrentServingPoint `json:"concurrent_serving"`

	// SteadyStateAllocs maps each hot kernel to its AllocsPerRun count
	// after warm-up (threads=1). The zero-allocation contract requires
	// every entry to be 0.
	SteadyStateAllocs map[string]float64 `json:"steady_state_allocs"`

	// BaselineTrainStepNs is the recorded pre-optimization train-step
	// ns/op this run is compared against (0 when not provided);
	// TrainStepSpeedup is baseline / best measured train-step ns/op.
	BaselineTrainStepNs float64 `json:"baseline_train_step_ns_per_op,omitempty"`
	TrainStepSpeedup    float64 `json:"train_step_speedup,omitempty"`
}

func main() {
	quick := flag.Bool("quick", false, "CI-sized shapes and a single timed iteration per benchmark")
	out := flag.String("o", "BENCH_PR10.json", "output JSON path")
	threadList := flag.String("threads", "1,2,4,8", "comma-separated thread counts to sweep")
	oversub := flag.Bool("oversubscribe", false, "lift the NumCPU clamp on the thread sweep")
	baseline := flag.Float64("baseline", 0, "pre-optimization train-step ns/op to compute the speedup against")
	flag.Parse()

	threads, err := parseThreads(*threadList)
	if err != nil {
		fatal(err)
	}
	meshgnn.SetOversubscribe(*oversub)

	// testing.Benchmark honors the -test.benchtime flag; register the
	// testing flags so it can be set programmatically.
	testing.Init()
	// 6 iterations per kernel: testing.Benchmark reports the mean over N,
	// and at 2x a single descheduled iteration skewed a committed kernel
	// number by 20%+ run to run; the tracked kernels cost at most ~1 s/op
	// so the extra iterations add seconds, not minutes.
	benchtime := "6x"
	if *quick {
		benchtime = "1x"
	}
	if err := flag.Lookup("test.benchtime").Value.Set(benchtime); err != nil {
		fatal(err)
	}

	rep := &Report{
		GeneratedBy:       "cmd/bench",
		Quick:             *quick,
		GoMaxProcs:        runtime.GOMAXPROCS(0),
		NumCPU:            runtime.NumCPU(),
		SteadyStateAllocs: map[string]float64{},
	}

	fmt.Printf("bench: quick=%v threads=%v benchtime=%s\n", *quick, threads, benchtime)
	swept := map[int]bool{}
	for _, t := range threads {
		eff := parallel.Clamp(t)
		if eff != t {
			fmt.Printf("bench: threads=%d clamped to %d (NumCPU=%d; pass -oversubscribe to lift the cap)\n",
				t, eff, runtime.NumCPU())
		}
		if swept[eff] {
			fmt.Printf("bench: skipping duplicate sweep at effective threads=%d\n", eff)
			continue
		}
		swept[eff] = true
		runSweep(rep, *quick, eff)
	}
	meshgnn.SetParallelism(0, true)

	measureOverlap(rep, *quick)
	meshgnn.SetParallelism(0, true)

	measureInference(rep, *quick)
	meshgnn.SetParallelism(0, true)

	measureBatchedServing(rep, *quick)
	meshgnn.SetParallelism(0, true)

	measureConcurrentServing(rep, *quick)
	meshgnn.SetParallelism(0, true)

	measureBatchedTraining(rep, *quick)
	meshgnn.SetParallelism(0, true)

	checkSteadyStateAllocs(rep, *quick)

	if *baseline > 0 {
		rep.BaselineTrainStepNs = *baseline
		best := 0.0
		for _, b := range rep.Benches {
			if b.Name == "train_step" && (best == 0 || b.NsPerOp < best) {
				best = b.NsPerOp
			}
		}
		if best > 0 {
			rep.TrainStepSpeedup = *baseline / best
			fmt.Printf("bench: train-step speedup vs baseline: %.2fx\n", rep.TrainStepSpeedup)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("bench: wrote %s\n", *out)

	bad := false
	for name, n := range rep.SteadyStateAllocs {
		if n != 0 {
			fmt.Fprintf(os.Stderr, "bench: FAIL %s allocates %v times per op in steady state\n", name, n)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
	fmt.Println("bench: steady-state allocation check passed (0 allocs/op in all hot kernels)")
}

func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bench: bad thread count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

// quiesced runs f with the garbage collector disabled (after forcing a
// collection so the heap starts clean) and restores the previous GC
// target afterwards. The timed loops inside f are all steady-state
// zero-allocation kernels, so the only thing this removes is background
// GC assist noise — the 2–18 allocs/op the harness used to attribute to
// the sweeps when a cycle happened to land inside a timed window.
func quiesced(f func()) {
	prev := debug.SetGCPercent(-1)
	runtime.GC()
	defer debug.SetGCPercent(prev)
	f()
}

// recordQuiesced is record with the GC quiesced around the whole
// benchmark run (warm-up included, so no cycle lands inside a timed
// window).
func recordQuiesced(rep *Report, name string, threads int, f func(b *testing.B)) {
	quiesced(func() { record(rep, name, threads, f) })
}

// record runs one benchmark body under testing.Benchmark and appends the
// measurement.
func record(rep *Report, name string, threads int, f func(b *testing.B)) {
	r := testing.Benchmark(f)
	res := BenchResult{
		Name:        name,
		Threads:     threads,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	rep.Benches = append(rep.Benches, res)
	fmt.Printf("  %-12s threads=%d  %14.0f ns/op  %8d B/op  %6d allocs/op\n",
		name, threads, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
}

// runSweep measures the three tracked benchmarks at one thread count.
func runSweep(rep *Report, quick bool, threads int) {
	meshgnn.SetParallelism(threads, true)

	// Forward GEMM at the large-model edge shape (quick: a quarter-height
	// slice of the same shape).
	rows := 49152
	if quick {
		rows = 12288
	}
	const in, out = 96, 32
	record(rep, "mat_mul", threads, func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		a := tensor.New(rows, in)
		w := tensor.New(in, out)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range w.Data {
			w.Data[i] = rng.NormFloat64()
		}
		dst := tensor.New(rows, out)
		tensor.MatMul(dst, a, w) // warm-up: populate kernel task pools
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tensor.MatMul(dst, a, w)
		}
	})

	// One consistent NMP layer forward+backward on a real sub-graph at
	// the large model's hidden width.
	ex, ey, ez, p := 8, 8, 8, 3
	if quick {
		ex, ey, ez, p = 4, 4, 4, 2
	}
	recordQuiesced(rep, "nmp_layer", threads, func(b *testing.B) {
		withSingleRank(b, ex, ey, ez, p, func(b *testing.B, r *meshgnn.Rank) {
			const hidden = 32
			rng := rand.New(rand.NewSource(3))
			layer := gnn.NewNMPLayer("bench", hidden, 2, rng)
			arena := tensor.NewArena()
			layer.SetArena(arena)
			params := layer.Params()
			x := tensor.New(r.Graph.NumLocal(), hidden)
			e := tensor.New(r.Graph.NumEdges(), hidden)
			for i := range x.Data {
				x.Data[i] = rng.NormFloat64()
			}
			for i := range e.Data {
				e.Data[i] = rng.NormFloat64()
			}
			step := func() {
				arena.Reset()
				nn.ZeroGrads(params)
				xo, eo := layer.Forward(r.Ctx, x, e)
				layer.Backward(xo, eo)
			}
			step() // warm-up: record the arena
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
		})
	})

	// End-to-end training step (encode, M NMP layers, decode, consistent
	// loss, backward, AllReduce, SGD) for the large model at R=1 — the
	// throughput quantity of the paper's Fig. 7.
	ex, ey, ez, p = 6, 6, 6, 3
	if quick {
		ex, ey, ez, p = 3, 3, 3, 2
	}
	recordQuiesced(rep, "train_step", threads, func(b *testing.B) {
		withSingleRank(b, ex, ey, ez, p, func(b *testing.B, r *meshgnn.Rank) {
			model, err := meshgnn.NewModel(meshgnn.LargeConfig())
			if err != nil {
				b.Fatal(err)
			}
			trainer := meshgnn.NewTrainer(model, meshgnn.NewSGD(0.01))
			x := r.Sample(meshgnn.TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0)
			trainer.Step(r.Ctx, x, x) // warm-up: record the arena
			trainer.Step(r.Ctx, x, x) // second pass settles lazy double-buffers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				trainer.Step(r.Ctx, x, x)
			}
		})
	})

	// Forward-only serving step for the large model on the same mesh —
	// the compiled engine (no backward buffers, cached static-edge
	// encoding), bitwise-equal to Model.Forward.
	recordQuiesced(rep, "infer_step", threads, func(b *testing.B) {
		withSingleRank(b, ex, ey, ez, p, func(b *testing.B, r *meshgnn.Rank) {
			model, err := meshgnn.NewModel(meshgnn.LargeConfig())
			if err != nil {
				b.Fatal(err)
			}
			eng, err := meshgnn.NewInference(model)
			if err != nil {
				b.Fatal(err)
			}
			x := r.Sample(meshgnn.TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0)
			eng.Predict(r.Ctx, x) // warm-up: bind the engine
			eng.Predict(r.Ctx, x) // second pass settles the output double-buffer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Predict(r.Ctx, x)
			}
		})
	})

	// The float32 serving twin on the identical mesh and model: same
	// compiled-engine step, parameters and static-edge cache demoted once
	// at compile time, GEMMs through the packed f32 kernels. Tolerance
	// against the f64 oracle is gated separately (measureInference and the
	// f32 parity tests); here only the step time is tracked — the ratchet
	// requires it beat infer_step.
	recordQuiesced(rep, "infer_step_f32", threads, func(b *testing.B) {
		withSingleRank(b, ex, ey, ez, p, func(b *testing.B, r *meshgnn.Rank) {
			cfg := meshgnn.LargeConfig()
			cfg.Precision = meshgnn.Float32
			model, err := meshgnn.NewModel(cfg)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := meshgnn.NewInference(model)
			if err != nil {
				b.Fatal(err)
			}
			x := r.Sample(meshgnn.TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0)
			eng.Predict(r.Ctx, x) // warm-up: bind the engine
			eng.Predict(r.Ctx, x) // second pass settles the output double-buffer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Predict(r.Ctx, x)
			}
		})
	})
}

// measureInference records the serving tier: the compiled engine against
// the training forward at R=1 and R=2 (sync and overlapped, float64 and
// the float32 twin), via the same collective measurement body cmd/serve
// reports. Parity is asserted — any bitwise drift between the float64
// serving path and the training kernels fails the process, and the
// float32 twin must stay inside its relative-error tolerance gate.
func measureInference(rep *Report, quick bool) {
	meshgnn.SetParallelism(1, true)
	elems, p, requests, rollout := 5, 3, 20, 10
	if quick {
		elems, p, requests, rollout = 3, 2, 5, 3
	}
	fmt.Println("bench: inference serving tier (training forward vs compiled engine):")
	type point struct {
		ranks   int
		overlap bool
		f32     bool
	}
	points := []point{
		{1, false, false}, {2, false, false}, {2, true, false},
		// The float32 twin: single-rank and across a real halo exchange,
		// gated on relative error against the float64 training forward.
		{1, false, true}, {2, false, true},
	}
	for _, pc := range points {
		box, err := mesh.NewBox(pc.ranks*elems, elems, elems, p, [3]bool{true, true, true})
		if err != nil {
			fatal(err)
		}
		part, err := partition.NewCartesian(box, pc.ranks, partition.Slabs)
		if err != nil {
			fatal(err)
		}
		locals, err := graph.BuildAll(box, part)
		if err != nil {
			fatal(err)
		}
		cfg := meshgnn.LargeConfig()
		cfg.Overlap = pc.overlap
		if pc.f32 {
			cfg.Precision = meshgnn.Float32
		}
		var pt experiments.ServingPoint
		err = comm.Run(pc.ranks, func(c *comm.Comm) error {
			got, err := experiments.MeasureInferenceRank(c, box, locals[c.Rank()],
				comm.SendRecvMode, cfg, requests, rollout)
			if err != nil || c.Rank() != 0 {
				return err
			}
			pt = got
			return nil
		})
		if err != nil {
			fatal(err)
		}
		rep.Inference = append(rep.Inference, pt)
		pipeline := "sync"
		if pc.overlap {
			pipeline = "overlap"
		}
		if pc.f32 {
			fmt.Printf("  R=%d %-7s  train-fwd %12.0f ns  infer %12.0f ns  speedup %.3fx  p99 %.3f ms  f32 max-rel %.3g (traj %.3g)\n",
				pt.Ranks, pipeline, pt.TrainForwardNs, pt.InferNs, pt.Speedup, pt.LatencyP99Ns/1e6, pt.ParityMaxRel, pt.RolloutMaxRel)
			if pt.ParityMaxRel > experiments.F32Tolerance {
				fmt.Fprintf(os.Stderr, "bench: FAIL float32 engine rel error %.3g exceeds the %.1g tolerance gate\n",
					pt.ParityMaxRel, experiments.F32Tolerance)
				os.Exit(1)
			}
			continue
		}
		fmt.Printf("  R=%d %-7s  train-fwd %12.0f ns  infer %12.0f ns  speedup %.3fx  p99 %.3f ms  parity-diff %d\n",
			pt.Ranks, pipeline, pt.TrainForwardNs, pt.InferNs, pt.Speedup, pt.LatencyP99Ns/1e6, pt.ParityDiffBits)
		if pt.ParityDiffBits != 0 {
			fmt.Fprintf(os.Stderr, "bench: FAIL inference engine diverged bitwise from Model.Forward (%d values)\n",
				pt.ParityDiffBits)
			os.Exit(1)
		}
	}
}

// measureBatchedServing records the block-diagonal batching tier: B
// concurrent Predict requests coalesced by the Server's admission queue
// into one fused collective evaluation, against the same fabric serving
// the same request stream one at a time. The shape is deliberately
// latency-bound — many ranks over the socket transport with a tiny
// per-rank graph, links carrying an emulated wire latency
// (comm.LinkDelay, the same constant as the concurrent-serving tier) —
// because that is the regime batching exists for: the halo message
// count is batch-invariant, so a fused batch pays one exchange round
// where B sequential requests pay B. Without the emulated delay a
// single-host fabric is compute-bound and the measured amortization
// collapses toward the GEMM-sweep saving alone, leaving the committed
// B=8 floor hostage to scheduler noise. Per-sample results are
// bitwise-identical either way (the engine's batched-parity sweep
// asserts it; LinkDelay changes schedules, never data), so throughput
// is the only axis.
func measureBatchedServing(rep *Report, quick bool) {
	meshgnn.SetParallelism(1, true)
	const ranks, elems, p = 8, 2, 1
	const linkDelay = 500 * time.Microsecond
	// Best-of-7: the amortization ratio divides two best-of-reps minima,
	// and on an oversubscribed single-core host the per-rep aggregates
	// drift enough that 3 reps leave the ratio ±0.1x run to run. Seven
	// reps of ~0.1 s each converge the minima at negligible cost next to
	// the kernel sweep.
	reqsPerRep, reps := 96, 7
	if quick {
		reqsPerRep, reps = 32, 2
	}
	m, err := meshgnn.NewMesh(ranks*elems, elems, elems, p, meshgnn.FullyPeriodic)
	if err != nil {
		fatal(err)
	}
	sys, err := meshgnn.NewSystem(m, ranks, meshgnn.Slabs)
	if err != nil {
		fatal(err)
	}
	model, err := meshgnn.NewModel(meshgnn.SmallConfig())
	if err != nil {
		fatal(err)
	}
	f := meshgnn.TaylorGreen{V0: 1, L: 1, Nu: 0.01}
	inputs := make([]*meshgnn.Matrix, sys.Ranks)
	for r := range inputs {
		inputs[r] = meshgnn.SampleField(f, sys.Locals[r], 0.25)
	}
	fmt.Printf("bench: batched serving tier (R=%d sockets, %d nodes/rank, %v link delay, best of %d reps):\n",
		ranks, inputs[0].Rows, linkDelay, reps)
	var baseNs float64
	for _, batch := range []int{1, 2, 4, 8} {
		srv, err := sys.ServeWith(meshgnn.Sockets, meshgnn.NeighborAllToAll, model, meshgnn.ServeOptions{
			MaxBatch:      batch,
			BatchWindow:   100 * time.Millisecond,
			WrapTransport: meshgnn.LinkDelay(linkDelay),
		})
		if err != nil {
			fatal(err)
		}
		var mu sync.Mutex
		var reqErr error
		burst := func() {
			var wg sync.WaitGroup
			for b := 0; b < batch; b++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := srv.Predict(inputs); err != nil {
						mu.Lock()
						if reqErr == nil {
							reqErr = err
						}
						mu.Unlock()
					}
				}()
			}
			wg.Wait()
		}
		bursts := reqsPerRep / batch
		burst() // bind the engines (per-batch arena recording)
		burst() // settle the double-buffers and warm the pools
		best := 0.0
		for rp := 0; rp < reps; rp++ {
			start := time.Now()
			for i := 0; i < bursts; i++ {
				burst()
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(bursts*batch)
			if best == 0 || ns < best {
				best = ns
			}
		}
		if cerr := srv.Close(); reqErr == nil && cerr != nil {
			reqErr = cerr
		}
		if reqErr != nil {
			fatal(reqErr)
		}
		if batch == 1 {
			baseNs = best
		}
		pt := BatchedServingPoint{
			Ranks: ranks, Mode: "na2a", Batch: batch, Rounds: bursts * reps,
			LinkDelayUs:      float64(linkDelay.Microseconds()),
			NsPerReq:         best,
			ThroughputReqSec: 1e9 / best,
			AmortizationVsB1: baseNs / best,
		}
		rep.BatchedServing = append(rep.BatchedServing, pt)
		fmt.Printf("  B=%d  %12.0f ns/req  %10.1f req/s  amortization %.2fx\n",
			batch, pt.NsPerReq, pt.ThroughputReqSec, pt.AmortizationVsB1)
	}
}

// measureConcurrentServing records the multi-session serving tier: one
// Server whose engine is compiled once (immutable parameter twins,
// pre-packed GEMM panels, shared static-edge cache) and served through S
// independent sessions, each its own 2-rank socket collective group,
// saturated by 4*S closed-loop clients. The links carry an emulated wire
// latency (comm.LinkDelay, 500µs) so the fabric is latency-bound the way
// a real multi-host interconnect is: a single session spends most of
// each request blocked on halo round-trips, and S sessions overlap S
// independent rounds — the throughput scaling cmd/ratchet
// -session-scaling floors at 2.5x for S=4. On a compute-bound in-host
// fabric (no delay) sessions merely time-slice the cores and the scaling
// column would read ~1x, which is why the emulation is part of the tier,
// not a convenience. Every served answer is compared bitwise against a
// single-session reference; any divergence aborts the run.
func measureConcurrentServing(rep *Report, quick bool) {
	meshgnn.SetParallelism(1, true)
	const ranks, elems, p = 2, 3, 1
	delay := 500 * time.Microsecond
	warmup, measure := 400*time.Millisecond, 2*time.Second
	if quick {
		warmup, measure = 150*time.Millisecond, 600*time.Millisecond
	}
	m, err := meshgnn.NewMesh(ranks*elems, elems, elems, p, meshgnn.FullyPeriodic)
	if err != nil {
		fatal(err)
	}
	sys, err := meshgnn.NewSystem(m, ranks, meshgnn.Slabs)
	if err != nil {
		fatal(err)
	}
	model, err := meshgnn.NewModel(meshgnn.SmallConfig())
	if err != nil {
		fatal(err)
	}
	f := meshgnn.TaylorGreen{V0: 1, L: 1, Nu: 0.01}
	inputs := make([]*meshgnn.Matrix, sys.Ranks)
	for r := range inputs {
		inputs[r] = meshgnn.SampleField(f, sys.Locals[r], 0.25)
	}
	// Reference: the training model evaluated collectively — the bitwise
	// contract every concurrently served answer must meet.
	want, err := meshgnn.RunCollect(sys, meshgnn.NeighborAllToAll, func(r *meshgnn.Rank) (*meshgnn.Matrix, error) {
		mdl, err := meshgnn.NewModel(meshgnn.SmallConfig())
		if err != nil {
			return nil, err
		}
		return mdl.Forward(r.Ctx, inputs[r.ID()]).Clone(), nil
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("bench: concurrent serving tier (R=%d sockets, %v emulated link delay, %v measured):\n",
		ranks, delay, measure)
	var baseThroughput float64
	for _, sessions := range []int{1, 2, 4} {
		srv, err := sys.ServeWith(meshgnn.Sockets, meshgnn.NeighborAllToAll, model, meshgnn.ServeOptions{
			Sessions:      sessions,
			MaxBatch:      1, // no coalescing: the scaling column must not ride batch amortization
			WrapTransport: meshgnn.LinkDelay(delay),
		})
		if err != nil {
			fatal(err)
		}
		clients := 4 * sessions
		recs := make([]*experiments.LatencyRecorder, clients)
		mismatches := make([]int64, clients)
		errs := make([]error, clients)
		recStart := time.Now().Add(warmup)
		stop := recStart.Add(measure)
		var wg sync.WaitGroup
		for cl := 0; cl < clients; cl++ {
			wg.Add(1)
			go func(cl int) {
				defer wg.Done()
				rec := experiments.NewLatencyRecorder(experiments.DefaultLatencySamples)
				recs[cl] = rec
				for {
					t0 := time.Now()
					if t0.After(stop) {
						return
					}
					outs, err := srv.Predict(inputs)
					if err != nil {
						errs[cl] = err
						return
					}
					if !t0.Before(recStart) {
						rec.Record(float64(time.Since(t0).Nanoseconds()))
					}
					for r := range want {
						if !bitwiseEqual(outs[r], want[r]) {
							mismatches[cl]++
						}
					}
				}
			}(cl)
		}
		wg.Wait()
		if cerr := srv.Close(); cerr != nil {
			fatal(cerr)
		}
		rec := experiments.NewLatencyRecorder(experiments.DefaultLatencySamples)
		var bad int64
		for cl := range recs {
			if errs[cl] != nil {
				fatal(errs[cl])
			}
			rec.Merge(recs[cl])
			bad += mismatches[cl]
		}
		if bad > 0 {
			fmt.Fprintf(os.Stderr, "bench: FAIL %d concurrently served predictions diverged bitwise from the single-session reference (S=%d)\n",
				bad, sessions)
			os.Exit(1)
		}
		throughput := float64(rec.Count()) / measure.Seconds()
		if sessions == 1 {
			baseThroughput = throughput
		}
		pt := ConcurrentServingPoint{
			Ranks: ranks, Mode: "na2a", Sessions: sessions, Clients: clients,
			LinkDelayUs: float64(delay.Microseconds()),
			Requests:    rec.Count(), MeasureSec: measure.Seconds(),
			ThroughputReqSec: throughput,
			LatencyP50Ns:     rec.Quantile(50),
			LatencyP99Ns:     rec.Quantile(99),
			LatencyMaxNs:     rec.Max(),
			ScalingVsS1:      throughput / baseThroughput,
			BitwiseEqual:     true,
		}
		rep.ConcurrentServing = append(rep.ConcurrentServing, pt)
		fmt.Printf("  S=%d  %6d req  %10.1f req/s  p50 %7.3f ms  p99 %7.3f ms  max %7.3f ms  scaling %.2fx\n",
			sessions, pt.Requests, pt.ThroughputReqSec,
			pt.LatencyP50Ns/1e6, pt.LatencyP99Ns/1e6, pt.LatencyMaxNs/1e6, pt.ScalingVsS1)
	}
}

// bitwiseEqual reports whether two matrices carry identical bit patterns
// value for value — the concurrency tier's equality contract (no
// tolerance: sessions share one compiled engine, so every code path is
// the same arithmetic).
func bitwiseEqual(a, b *meshgnn.Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// measureOverlap times the end-to-end training step on a multi-rank run
// with the synchronous and the overlapped halo pipeline (bitwise-equal
// results, so only the wall clock differs) and records the speedup point
// plus the halo/exposed time decomposition. Single-host goroutine ranks
// time-share the cores, so the absolute speedup is conservative; the
// exposed-time shrinkage is the direct signal that the transfer is being
// hidden.
func measureOverlap(rep *Report, quick bool) {
	meshgnn.SetParallelism(1, true) // one worker per rank: no pool contention
	elems, p, iters := 4, 3, 5
	rankCounts := []int{2, 4}
	if quick {
		elems, p, iters = 3, 2, 3
		rankCounts = []int{2}
	}
	fmt.Println("bench: overlap vs synchronous halo pipeline (SendRecv mode):")
	if runtime.NumCPU() < 2 {
		fmt.Println("  (single-CPU host: goroutine ranks time-share one core, so the transfer")
		fmt.Println("   cannot progress during compute and no overlap win is measurable here;")
		fmt.Println("   the exposed-time column is still exact, and correctness is asserted")
		fmt.Println("   bitwise by the consistency harness regardless of core count)")
	}
	for _, ranks := range rankCounts {
		m, err := meshgnn.NewMesh(ranks*elems, elems, elems, p, meshgnn.FullyPeriodic)
		if err != nil {
			fatal(err)
		}
		sys, err := meshgnn.NewSystem(m, ranks, meshgnn.Slabs)
		if err != nil {
			fatal(err)
		}
		run := func(overlap bool) (nsPerIter, haloSec, exposedSec float64) {
			cfg := meshgnn.LargeConfig()
			cfg.Overlap = overlap
			err := sys.Run(meshgnn.SendRecv, func(r *meshgnn.Rank) error {
				model, err := meshgnn.NewModel(cfg)
				if err != nil {
					return err
				}
				trainer := meshgnn.NewTrainer(model, meshgnn.NewSGD(0.01))
				x := r.Sample(meshgnn.TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0)
				trainer.Step(r.Ctx, x, x) // warm-up: record arenas, pools
				base := r.Ctx.Comm.Stats
				r.Ctx.Comm.Barrier()
				start := time.Now()
				for it := 0; it < iters; it++ {
					trainer.Step(r.Ctx, x, x)
				}
				r.Ctx.Comm.Barrier()
				elapsed := time.Since(start)
				if r.ID() != 0 {
					return nil
				}
				nsPerIter = float64(elapsed.Nanoseconds()) / float64(iters)
				haloSec = (r.Ctx.Comm.Stats.HaloSeconds - base.HaloSeconds) / float64(iters)
				exposedSec = (r.Ctx.Comm.Stats.HaloExposedSeconds - base.HaloExposedSeconds) / float64(iters)
				return nil
			})
			if err != nil {
				fatal(err)
			}
			return nsPerIter, haloSec, exposedSec
		}
		syncNs, syncHalo, syncExp := run(false)
		overNs, overHalo, overExp := run(true)
		pt := OverlapPoint{
			Ranks: ranks, Mode: "sendrecv", Threads: 1, Iters: iters,
			SyncNsPerIter: syncNs, OverlapNsPerIter: overNs, Speedup: syncNs / overNs,
			SyncHaloSec: syncHalo, SyncExposedSec: syncExp,
			OverlapHaloSec: overHalo, OverlapExposedSec: overExp,
			Oversubscribed: ranks > runtime.NumCPU(),
		}
		rep.Overlap = append(rep.Overlap, pt)
		fmt.Printf("  R=%d  sync %12.0f ns/iter (exposed %.3f ms)  overlap %12.0f ns/iter (exposed %.3f ms)  speedup %.3fx\n",
			ranks, syncNs, syncExp*1e3, overNs, overExp*1e3, pt.Speedup)
		if pt.Oversubscribed {
			fmt.Printf("       ^ R=%d ranks oversubscribe %d core(s): the ranks time-slice each other, so\n",
				ranks, runtime.NumCPU())
			fmt.Println("         this speedup column is scheduler pressure, not overlap efficiency —")
			fmt.Println("         judge the exposed-time columns; on multi-core hosts this point recovers")
		}
	}
}

// measureBatchedTraining records the row-block batched-training tier: B
// same-mesh samples through one fused StepBatch on a 4-rank socket fabric
// with a tiny per-rank graph, against the B=1 baseline (StepBatch
// delegates B=1 to Step, so the baseline IS the sequential path). The
// shape is deliberately overhead-bound — small model, small graph, real
// socket collectives — because that is the regime training batching
// exists for: the fused step pays one gradient AllReduce, one optimizer
// step, and one pack-cache invalidation where B sequential steps pay B of
// each, while the accumulated gradient stays bitwise-equal (asserted by
// the internal/gnn oracle sweep, not re-measured here).
func measureBatchedTraining(rep *Report, quick bool) {
	meshgnn.SetParallelism(1, true)
	const ranks, elems, p = 4, 2, 1
	// Best-of-7 for the same reason as the serving tier: the ratio of two
	// best-of-reps minima needs enough reps to converge on a time-sliced
	// single-core host.
	steps, reps := 6, 7
	if quick {
		steps, reps = 3, 2
	}
	m, err := meshgnn.NewMesh(ranks*elems, elems, elems, p, meshgnn.FullyPeriodic)
	if err != nil {
		fatal(err)
	}
	sys, err := meshgnn.NewSystem(m, ranks, meshgnn.Slabs)
	if err != nil {
		fatal(err)
	}
	f := meshgnn.TaylorGreen{V0: 1, L: 1, Nu: 0.01}
	fmt.Printf("bench: batched training tier (R=%d sockets, small model, %d fused steps/rep, best of %d reps):\n",
		ranks, steps, reps)
	var baseNs float64
	for _, batch := range []int{1, 2, 4, 8} {
		var nsPerSample float64
		err := sys.RunOn(meshgnn.Sockets, meshgnn.NeighborAllToAll, func(r *meshgnn.Rank) error {
			model, err := meshgnn.NewModel(meshgnn.SmallConfig())
			if err != nil {
				return err
			}
			trainer := meshgnn.NewTrainer(model, meshgnn.NewSGD(0.01))
			xs := make([]*meshgnn.Matrix, batch)
			ts := make([]*meshgnn.Matrix, batch)
			for b := range xs {
				xs[b] = r.Sample(f, 0.1*float64(b))
				ts[b] = r.Sample(f, 0.1*float64(b)+0.05)
			}
			trainer.StepBatch(r.Ctx, xs, ts) // bind: record the batched arena
			trainer.StepBatch(r.Ctx, xs, ts)
			best := 0.0
			for rp := 0; rp < reps; rp++ {
				r.Ctx.Comm.Barrier()
				start := time.Now()
				for s := 0; s < steps; s++ {
					trainer.StepBatch(r.Ctx, xs, ts)
				}
				r.Ctx.Comm.Barrier()
				ns := float64(time.Since(start).Nanoseconds()) / float64(steps*batch)
				if best == 0 || ns < best {
					best = ns
				}
			}
			if r.ID() == 0 {
				nsPerSample = best
			}
			return nil
		})
		if err != nil {
			fatal(err)
		}
		if batch == 1 {
			baseNs = nsPerSample
		}
		pt := BatchedTrainingPoint{
			Ranks: ranks, Mode: "na2a", Batch: batch, Steps: steps * reps,
			NsPerSample:      nsPerSample,
			AmortizationVsB1: baseNs / nsPerSample,
		}
		rep.BatchedTraining = append(rep.BatchedTraining, pt)
		fmt.Printf("  B=%d  %12.0f ns/sample  amortization %.2fx\n",
			batch, pt.NsPerSample, pt.AmortizationVsB1)
	}
}

// withSingleRank builds a single-rank periodic system and runs fn inside
// its SPMD closure.
func withSingleRank(b *testing.B, ex, ey, ez, p int, fn func(b *testing.B, r *meshgnn.Rank)) {
	m, err := meshgnn.NewMesh(ex, ey, ez, p, meshgnn.FullyPeriodic)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := meshgnn.NewSystem(m, 1, meshgnn.Slabs)
	if err != nil {
		b.Fatal(err)
	}
	err = sys.Run(meshgnn.NoExchange, func(r *meshgnn.Rank) error {
		fn(b, r)
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// checkSteadyStateAllocs measures AllocsPerRun for the hot kernels after
// warm-up, at threads=1 (which isolates kernel-owned allocations from the
// pooled-but-GC-sensitive parallel dispatch).
func checkSteadyStateAllocs(rep *Report, quick bool) {
	parallel.Configure(1, true)
	defer parallel.Configure(0, true)

	// MatMul.
	{
		a := tensor.New(256, 32)
		w := tensor.New(32, 16)
		dst := tensor.New(256, 16)
		tensor.MatMul(dst, a, w)
		rep.SteadyStateAllocs["mat_mul"] = testing.AllocsPerRun(10, func() {
			tensor.MatMul(dst, a, w)
		})
	}

	// MLP forward+backward on an arena.
	{
		rng := rand.New(rand.NewSource(7))
		m := nn.NewMLP("b", 12, 32, 8, 2, true, rng)
		arena := tensor.NewArena()
		m.SetArena(arena)
		params := m.Params()
		x := tensor.New(300, 12)
		dy := tensor.New(300, 8)
		pass := func() {
			arena.Reset()
			nn.ZeroGrads(params)
			m.Forward(x)
			m.Backward(dy)
		}
		pass()
		rep.SteadyStateAllocs["mlp_step"] = testing.AllocsPerRun(10, pass)
	}

	// Full NMP layer step and train step on a real sub-graph.
	ex, ey, ez, p := 4, 4, 4, 2
	if quick {
		ex, ey, ez, p = 3, 3, 3, 2
	}
	m, err := meshgnn.NewMesh(ex, ey, ez, p, meshgnn.FullyPeriodic)
	if err != nil {
		fatal(err)
	}
	sys, err := meshgnn.NewSystem(m, 1, meshgnn.Slabs)
	if err != nil {
		fatal(err)
	}
	err = sys.Run(meshgnn.NoExchange, func(r *meshgnn.Rank) error {
		rng := rand.New(rand.NewSource(11))
		layer := gnn.NewNMPLayer("b", 16, 2, rng)
		arena := tensor.NewArena()
		layer.SetArena(arena)
		params := layer.Params()
		x := tensor.New(r.Graph.NumLocal(), 16)
		e := tensor.New(r.Graph.NumEdges(), 16)
		step := func() {
			arena.Reset()
			nn.ZeroGrads(params)
			xo, eo := layer.Forward(r.Ctx, x, e)
			layer.Backward(xo, eo)
		}
		step()
		rep.SteadyStateAllocs["nmp_step"] = testing.AllocsPerRun(5, step)

		model, err := meshgnn.NewModel(meshgnn.SmallConfig())
		if err != nil {
			return err
		}
		trainer := meshgnn.NewTrainer(model, meshgnn.NewSGD(0.01))
		xs := r.Sample(meshgnn.TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0)
		trainer.Step(r.Ctx, xs, xs)
		trainer.Step(r.Ctx, xs, xs)
		rep.SteadyStateAllocs["train_step"] = testing.AllocsPerRun(5, func() {
			trainer.Step(r.Ctx, xs, xs)
		})

		// The row-block batched step holds the same contract: after the
		// recording pass the fused B-sample step is allocation-free.
		bxs := make([]*meshgnn.Matrix, 4)
		bts := make([]*meshgnn.Matrix, 4)
		for b := range bxs {
			bxs[b] = r.Sample(meshgnn.TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0.1*float64(b))
			bts[b] = r.Sample(meshgnn.TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0.1*float64(b)+0.05)
		}
		trainer.StepBatch(r.Ctx, bxs, bts)
		trainer.StepBatch(r.Ctx, bxs, bts)
		rep.SteadyStateAllocs["train_step_batched"] = testing.AllocsPerRun(5, func() {
			trainer.StepBatch(r.Ctx, bxs, bts)
		})

		eng, err := meshgnn.NewInference(model)
		if err != nil {
			return err
		}
		eng.Predict(r.Ctx, xs)
		eng.Predict(r.Ctx, xs)
		rep.SteadyStateAllocs["infer_step"] = testing.AllocsPerRun(5, func() {
			eng.Predict(r.Ctx, xs)
		})

		// The float32 serving twin holds the same contract: after the
		// first Predict binds the graph (staging, arena recording), the
		// steady state is allocation-free.
		cfg32 := meshgnn.SmallConfig()
		cfg32.Precision = meshgnn.Float32
		model32, err := meshgnn.NewModel(cfg32)
		if err != nil {
			return err
		}
		eng32, err := meshgnn.NewInference(model32)
		if err != nil {
			return err
		}
		eng32.Predict(r.Ctx, xs)
		eng32.Predict(r.Ctx, xs)
		rep.SteadyStateAllocs["infer_step_f32"] = testing.AllocsPerRun(5, func() {
			eng32.Predict(r.Ctx, xs)
		})
		return nil
	})
	if err != nil {
		fatal(err)
	}

	fmt.Println("bench: steady-state allocs/op:")
	for _, k := range []string{"mat_mul", "mlp_step", "nmp_step", "train_step", "train_step_batched", "infer_step", "infer_step_f32"} {
		fmt.Printf("  %-12s %v\n", k, rep.SteadyStateAllocs[k])
	}
}
