// Command meshinfo inspects spectral-element meshes and their domain
// decompositions, regenerating the paper's Table II (partitioned
// sub-graph statistics at 512k-node loading for 8–2048 ranks) and
// reporting arbitrary user configurations.
//
// Usage:
//
//	meshinfo -table2                  # paper Table II, analytic fast path
//	meshinfo -ex 8 -ey 8 -ez 8 -p 3 -ranks 16 -strategy blocks
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"meshgnn/internal/experiments"
	"meshgnn/internal/graph"
	"meshgnn/internal/mesh"
	"meshgnn/internal/partition"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("meshinfo: ")
	var (
		table2   = flag.Bool("table2", false, "regenerate the paper's Table II")
		ex       = flag.Int("ex", 4, "elements along x")
		ey       = flag.Int("ey", 4, "elements along y")
		ez       = flag.Int("ez", 4, "elements along z")
		p        = flag.Int("p", 3, "polynomial order")
		ranks    = flag.Int("ranks", 8, "number of ranks")
		strategy = flag.String("strategy", "blocks", "partition strategy: slabs, pencils, blocks, rcb")
		periodic = flag.Bool("periodic", false, "periodic in all directions")
		build    = flag.Bool("build", false, "materialize the distributed graphs and cross-check the analytic stats")
	)
	flag.Parse()

	if *table2 {
		fmt.Println("Table II: statistics of partitioned sub-graphs, nominally 512k local nodes (p=5, 16^3 elements/rank, periodic)")
		fmt.Println()
		rows, err := experiments.Table2(5, 16, []int{8, 64, 512, 2048})
		if err != nil {
			log.Fatal(err)
		}
		experiments.RenderTable2(os.Stdout, rows)
		fmt.Println("\nPaper reference (512k loading): R=8 -> 518k nodes, 12.8k halos, 2 neighbors;")
		fmt.Println("R>=64 -> ~531-540k nodes, bounded halos and neighbors; 1.105e9 nodes at R=2048.")
		return
	}

	per := [3]bool{*periodic, *periodic, *periodic}
	box, err := mesh.NewBox(*ex, *ey, *ez, *p, per)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %dx%dx%d elements, p=%d, %d nodes, %d per element, periodic=%v\n",
		*ex, *ey, *ez, *p, box.NumNodes(), box.NodesPerElement(), *periodic)

	var part partition.Partition
	switch *strategy {
	case "rcb":
		part, err = partition.NewRCB(box, *ranks)
	default:
		var strat partition.Strategy
		switch *strategy {
		case "slabs":
			strat = partition.Slabs
		case "pencils":
			strat = partition.Pencils
		case "blocks":
			strat = partition.Blocks
		default:
			log.Fatalf("unknown strategy %q", *strategy)
		}
		part, err = partition.NewCartesian(box, *ranks, strat)
	}
	if err != nil {
		log.Fatal(err)
	}

	var stats []partition.RankStats
	if cart, ok := part.(*partition.Cartesian); ok && !*build {
		stats = cart.CartesianStats()
		fmt.Printf("partition: cartesian %dx%dx%d (%s), analytic statistics\n",
			cart.Rx, cart.Ry, cart.Rz, *strategy)
	} else {
		stats = partition.GenericStats(box, part)
		fmt.Printf("partition: %s, materialized statistics\n", *strategy)
	}

	sum := partition.Summarize(box, stats)
	fmt.Printf("\nper-rank: nodes %d..%d (avg %.0f)  halos %d..%d (avg %.0f)  neighbors %d..%d (avg %.1f)\n",
		sum.NodesMin, sum.NodesMax, sum.NodesAvg,
		sum.HaloMin, sum.HaloMax, sum.HaloAvg,
		sum.NeighborsMin, sum.NeighborsMax, sum.NeighborsAvg)
	fmt.Printf("total: %d unique graph nodes, %d local node instances (%.2fx duplication)\n",
		sum.TotalGraphNodes, sum.TotalLocalNodes,
		float64(sum.TotalLocalNodes)/float64(sum.TotalGraphNodes))

	if *build {
		locals, err := graph.BuildAll(box, part)
		if err != nil {
			log.Fatal(err)
		}
		var edges int
		mismatches := 0
		for r, l := range locals {
			edges += l.NumEdges()
			if l.Stats() != stats[r] {
				mismatches++
			}
		}
		fmt.Printf("materialized: %d directed edges across ranks; %d stat mismatches vs summary path\n",
			edges, mismatches)
	}
}
