package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"meshgnn"
	"meshgnn/internal/experiments"
	"meshgnn/internal/field"
)

// LoadgenPoint is one open-loop measurement: requests offered to the
// server at a fixed Poisson rate for a fixed duration, with the warm-up
// prefix discarded. Achieved throughput tracks the offered rate until
// the server saturates; past saturation the achieved rate plateaus, the
// queues fill, and requests start missing the deadline (Dropped) — the
// knee of the achieved-vs-offered curve is the saturation throughput.
type LoadgenPoint struct {
	Sessions       int     `json:"sessions"`
	OfferedReqSec  float64 `json:"offered_req_per_sec"`
	AchievedReqSec float64 `json:"achieved_req_per_sec"`
	// Scheduled counts every arrival the Poisson schedule placed inside
	// the warmup+measurement window. All of them are launched — the
	// generator terminates on the schedule clock, not the wall clock, so
	// late wakeups can never silently discard offered load — and each one
	// lands in exactly one of Warmup, Requests, or Dropped:
	// Scheduled == Warmup + Requests + Dropped.
	Scheduled int64 `json:"scheduled"`
	// Warmup counts arrivals that started before the warm-up cutoff and
	// are therefore excluded from the throughput and latency figures.
	Warmup   int64 `json:"warmup"`
	Requests int64 `json:"requests"`
	// Dropped counts measured requests that returned an error — in a
	// healthy overload that is the admission queue refusing within the
	// request deadline, i.e. graceful load shedding, not a serving fault.
	Dropped int64 `json:"dropped"`

	LatencyMeanNs float64 `json:"latency_mean_ns"`
	LatencyP50Ns  float64 `json:"latency_p50_ns"`
	LatencyP99Ns  float64 `json:"latency_p99_ns"`
	LatencyMaxNs  float64 `json:"latency_max_ns"`
}

// LoadgenReport is the schema cmd/serve -loadgen writes with -o.
type LoadgenReport struct {
	Ranks       int            `json:"ranks"`
	Mode        string         `json:"mode"`
	Model       string         `json:"model"`
	LinkDelayUs float64        `json:"link_delay_us"`
	WarmupSec   float64        `json:"warmup_sec"`
	DurationSec float64        `json:"duration_sec"`
	Deadline    string         `json:"request_deadline"`
	Points      []LoadgenPoint `json:"points"`
}

// loadgenConfig carries the parsed -loadgen flags.
type loadgenConfig struct {
	sessions  []int
	rates     []float64
	duration  time.Duration
	warmup    time.Duration
	deadline  time.Duration
	linkDelay time.Duration
	out       string
}

// runLoadgen drives the open-loop load generator: for each session count
// and each offered rate it serves a Poisson arrival stream (seeded, so
// the schedule is reproducible) against a multi-session server on the
// socket fabric, discards the warm-up prefix, and records achieved
// throughput plus the latency distribution from a fixed-size reservoir.
//
// Open loop means arrivals do not wait for completions — the generator
// keeps offering at the configured rate even when the server falls
// behind, which is what exposes saturation: a closed loop self-throttles
// and always reports "100% served". Each request carries a deadline so
// overload degrades into bounded-latency load shedding instead of an
// unbounded in-flight pile-up.
//
// With -linkdelay > 0 every transport send pays an emulated wire latency
// (meshgnn.LinkDelay), putting the fabric in the latency-bound regime
// where independent sessions genuinely overlap their halo round-trips;
// on a single host without the delay the sessions only time-slice the
// cores and session scaling is not measurable.
func runLoadgen(lc loadgenConfig, ranks int, mode meshgnn.ExchangeMode, cfg meshgnn.Config,
	elems, p int) error {
	m, err := meshgnn.NewMesh(ranks*elems, elems, elems, p, meshgnn.FullyPeriodic)
	if err != nil {
		return err
	}
	sys, err := meshgnn.NewSystem(m, ranks, meshgnn.Slabs)
	if err != nil {
		return err
	}
	mdl, err := meshgnn.NewModel(cfg)
	if err != nil {
		return err
	}
	f := meshgnn.TaylorGreen{V0: 1, L: 1, Nu: 0.01}
	inputs := make([]*meshgnn.Matrix, sys.Ranks)
	for r := range inputs {
		inputs[r] = field.Sample(f, sys.Locals[r], 0.25)
	}

	rep := &LoadgenReport{
		Ranks: ranks, Mode: fmt.Sprint(mode), Model: cfg.Name,
		LinkDelayUs: float64(lc.linkDelay.Microseconds()),
		WarmupSec:   lc.warmup.Seconds(), DurationSec: lc.duration.Seconds(),
		Deadline: lc.deadline.String(),
	}
	fmt.Printf("loadgen: open-loop Poisson arrivals, R=%d sockets, %v link delay, %v warm-up + %v measured, %v request deadline\n",
		ranks, lc.linkDelay, lc.warmup, lc.duration, lc.deadline)
	for _, sessions := range lc.sessions {
		srv, err := sys.ServeWith(meshgnn.Sockets, mode, mdl, meshgnn.ServeOptions{
			Sessions:      sessions,
			MaxBatch:      1,
			WrapTransport: meshgnn.LinkDelay(lc.linkDelay),
		})
		if err != nil {
			return err
		}
		// One throwaway request per session binds the engines before the
		// clock starts (arena recording, graph staging).
		for i := 0; i < sessions; i++ {
			if _, err := srv.Predict(inputs); err != nil {
				srv.Close()
				return err
			}
		}
		fmt.Printf("  S=%d:\n", sessions)
		for _, rate := range lc.rates {
			pt := offerLoad(srv, inputs, sessions, rate, lc)
			rep.Points = append(rep.Points, pt)
			fmt.Printf("    offered %8.1f req/s  achieved %8.1f req/s  dropped %5d  p50 %7.3f ms  p99 %7.3f ms  max %7.3f ms\n",
				pt.OfferedReqSec, pt.AchievedReqSec, pt.Dropped,
				pt.LatencyP50Ns/1e6, pt.LatencyP99Ns/1e6, pt.LatencyMaxNs/1e6)
		}
		if err := srv.Close(); err != nil {
			return err
		}
	}

	if lc.out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(lc.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("loadgen: report written to %s\n", lc.out)
	}
	return nil
}

// offerLoad runs one (sessions, rate) point: a seeded Poisson arrival
// process for warmup+duration, each arrival a concurrent PredictTimeout,
// with only completions that STARTED after the warm-up cutoff recorded.
func offerLoad(srv *meshgnn.Server, inputs []*meshgnn.Matrix, sessions int,
	rate float64, lc loadgenConfig) LoadgenPoint {
	rng := rand.New(rand.NewSource(1))
	rec := experiments.NewLatencyRecorder(experiments.DefaultLatencySamples)
	var (
		mu                         sync.Mutex
		wg                         sync.WaitGroup
		warmup, completed, dropped int64
	)
	start := time.Now()
	recStart := start.Add(lc.warmup)
	stop := recStart.Add(lc.duration)
	next := start
	var scheduled int64
	// Terminate on the *schedule* clock, not the wall clock: an arrival
	// whose scheduled time falls inside the window is always launched, even
	// when the sleep wakes late. (Checking time.Now() after sleeping — the
	// old behavior — silently discarded the tail of the offered schedule
	// whenever the generator goroutine was delayed, understating load.)
	for !next.After(stop) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		scheduled++
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			_, err := srv.PredictTimeout(inputs, lc.deadline)
			lat := float64(time.Since(t0).Nanoseconds())
			// Every launched arrival is accounted under the same lock into
			// exactly one bucket, so the point-level invariant
			// Scheduled == Warmup + Requests + Dropped holds exactly.
			mu.Lock()
			defer mu.Unlock()
			if t0.Before(recStart) {
				warmup++ // warm-up: excluded from throughput and latency
				return
			}
			if err != nil {
				dropped++
				return
			}
			completed++
			rec.Record(lat)
		}()
		// Poisson process: exponential inter-arrival times at the offered
		// rate, from a fixed seed so the schedule replays exactly.
		next = next.Add(time.Duration(rng.ExpFloat64() / rate * 1e9))
	}
	wg.Wait()
	if scheduled != warmup+completed+dropped {
		panic(fmt.Sprintf("loadgen: accounting violated: scheduled %d != warmup %d + requests %d + dropped %d",
			scheduled, warmup, completed, dropped))
	}
	return LoadgenPoint{
		Sessions:       sessions,
		OfferedReqSec:  rate,
		AchievedReqSec: float64(completed) / lc.duration.Seconds(),
		Scheduled:      scheduled,
		Warmup:         warmup,
		Requests:       completed,
		Dropped:        dropped,
		LatencyMeanNs:  rec.Mean(),
		LatencyP50Ns:   rec.Quantile(50),
		LatencyP99Ns:   rec.Quantile(99),
		LatencyMaxNs:   rec.Max(),
	}
}

// parseIntList parses a comma-separated list of positive integers.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad count %q in %q", part, s)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseRateList parses a comma-separated list of positive rates (req/s).
func parseRateList(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad rate %q in %q", part, s)
		}
		out = append(out, r)
	}
	return out, nil
}
