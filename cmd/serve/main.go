// Command serve measures and demonstrates the in-situ inference serving
// path: it compiles the forward-only engine (meshgnn.Inference) from the
// seeded model, verifies its predictions are bitwise-equal to the
// training Model.Forward, and reports the serving profile — per-step
// time against the training forward on the same mesh, request
// throughput, and the latency distribution — plus a multi-step rollout
// timing. With -procs N every rank is its own OS process over the socket
// fabric (the command re-execs itself; see comm.RunProcs), so the serving
// numbers include real wire traffic.
//
// The facade request API (System.Serve / Server.Predict / Rollout) is
// exercised with a short request burst on the in-process fabric, so the
// command also smoke-tests the path a solver embedding the surrogate
// would call. With -batch B > 1 the burst is additionally replayed as B
// concurrent requests through a coalescing server (ServeOptions.MaxBatch)
// so one fused block-diagonal evaluation serves the whole cohort; the
// batched answers are checked bitwise against the sequential ones.
//
// With -loadgen the command instead runs an open-loop load generator
// against a multi-session server on the socket fabric: Poisson arrivals
// at each offered rate in -rates, swept across the session counts in
// -sessions, with the -warmup prefix discarded and every request under a
// deadline so overload sheds load instead of piling up. Latencies come
// from a fixed-size reservoir (exact max, sampled quantiles); -linkdelay
// adds an emulated wire latency per transport send, the regime where
// independent sessions overlap their halo round-trips. -o then writes
// the loadgen report instead of the serving point.
//
// Usage:
//
//	serve [-elems 6] [-p 2] [-ranks 2 | -procs 2] [-mode na2a] [-model small]
//	      [-requests 50] [-rollout 10] [-batch 4] [-overlap] [-f32] [-threads N]
//	      [-o point.json]
//	serve -loadgen [-sessions 1,4] [-rates 50,100,200,400] [-loaddur 2s]
//	      [-warmup 300ms] [-deadline 2s] [-linkdelay 500us] [-o load.json]
//
// With -f32 the engine is the single-precision serving twin: the bitwise
// parity check is replaced by a relative-error gate against the float64
// training forward (experiments.F32Tolerance) covering the verified
// predictions and the leading rollout steps; full-trajectory drift is
// reported ungated (autoregressive amplification dominates it).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sync"
	"time"

	"meshgnn"
	"meshgnn/internal/comm"
	"meshgnn/internal/experiments"
	"meshgnn/internal/field"
	"meshgnn/internal/graph"
	"meshgnn/internal/mesh"
	"meshgnn/internal/partition"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	var (
		elems    = flag.Int("elems", 6, "elements per axis")
		p        = flag.Int("p", 2, "polynomial order")
		ranks    = flag.Int("ranks", 2, "number of goroutine ranks")
		procs    = flag.Int("procs", 0, "run this many OS-process ranks over sockets (overrides -ranks)")
		modeFlag = flag.String("mode", "na2a", "halo exchange: none, a2a, na2a, sendrecv")
		model    = flag.String("model", "small", "model configuration: small or large")
		requests = flag.Int("requests", 50, "timed inference requests")
		rollout  = flag.Int("rollout", 10, "steps of the timed autoregressive rollout (0 = skip)")
		batch    = flag.Int("batch", 1, "also serve this many concurrent requests through a coalescing batched server (1 = skip)")
		overlap  = flag.Bool("overlap", false, "overlapped halo pipeline in the forward path (bitwise-identical)")
		f32      = flag.Bool("f32", false, "serve the float32 engine twin (tolerance-gated vs the float64 oracle)")
		threads  = flag.Int("threads", 0, "intra-rank worker threads per kernel (0 = GOMAXPROCS, 1 = serial)")
		out      = flag.String("o", "", "also write the measured serving point as JSON to this path")

		loadgen   = flag.Bool("loadgen", false, "run the open-loop load generator instead of the serving measurement")
		sessList  = flag.String("sessions", "1,4", "loadgen: comma-separated session counts to sweep")
		rateList  = flag.String("rates", "50,100,200,400", "loadgen: comma-separated offered rates (req/s)")
		loadDur   = flag.Duration("loaddur", 2*time.Second, "loadgen: measured duration per point (after warm-up)")
		warmup    = flag.Duration("warmup", 300*time.Millisecond, "loadgen: warm-up prefix discarded from each point")
		deadline  = flag.Duration("deadline", 2*time.Second, "loadgen: per-request deadline (overload sheds instead of piling up)")
		linkDelay = flag.Duration("linkdelay", 500*time.Microsecond, "loadgen: emulated wire latency per transport send (0 = none)")
	)
	flag.Parse()
	if *threads < 0 {
		log.Fatalf("-threads must be >= 0, got %d", *threads)
	}
	if *requests < 1 {
		log.Fatalf("-requests must be >= 1, got %d", *requests)
	}
	meshgnn.SetParallelism(*threads, true)
	mode, err := parseMode(*modeFlag)
	if err != nil {
		log.Fatal(err)
	}
	cfg := meshgnn.SmallConfig()
	if *model == "large" {
		cfg = meshgnn.LargeConfig()
	}
	cfg.Overlap = *overlap
	if *f32 {
		cfg.Precision = meshgnn.Float32
	}

	if *loadgen {
		sessions, err := parseIntList(*sessList)
		if err != nil {
			log.Fatal(err)
		}
		rates, err := parseRateList(*rateList)
		if err != nil {
			log.Fatal(err)
		}
		lc := loadgenConfig{
			sessions: sessions, rates: rates,
			duration: *loadDur, warmup: *warmup, deadline: *deadline,
			linkDelay: *linkDelay, out: *out,
		}
		if err := runLoadgen(lc, *ranks, mode, cfg, *elems, *p); err != nil {
			log.Fatal(err)
		}
		return
	}

	nRanks := *ranks
	useProcs := *procs > 0
	if useProcs {
		nRanks = *procs
	}
	worker := meshgnn.IsWorker()
	say := func(format string, args ...any) {
		if !worker {
			fmt.Printf(format, args...)
		}
	}

	box, err := mesh.NewBox(*elems, *elems, *elems, *p, [3]bool{true, true, true})
	if err != nil {
		log.Fatal(err)
	}
	part, err := partition.NewCartesian(box, nRanks, partition.Auto)
	if err != nil {
		log.Fatal(err)
	}
	locals, err := graph.BuildAll(box, part)
	if err != nil {
		log.Fatal(err)
	}
	transport := "in-process"
	if useProcs {
		transport = "processes"
	}
	pipeline := "sync"
	if *overlap {
		pipeline = "overlapped"
	}
	precision := "float64"
	if *f32 {
		precision = "float32"
	}
	say("mesh %d^3 elements p=%d (%d nodes), %d ranks (%s), %s exchange (%s), %s model, %s engine\n",
		*elems, *p, box.NumNodes(), nRanks, transport, mode, pipeline, cfg.Name, precision)

	var pt experiments.ServingPoint
	body := func(c *comm.Comm) error {
		got, err := experiments.MeasureInferenceRank(c, box, locals[c.Rank()], mode, cfg, *requests, *rollout)
		if err != nil || c.Rank() != 0 {
			return err
		}
		pt = got
		return nil
	}
	if useProcs {
		err = comm.RunProcs(nRanks, body)
	} else {
		err = comm.Run(nRanks, body)
	}
	if err != nil {
		log.Fatal(err)
	}
	if worker {
		return // the coordinator reports
	}

	if *f32 {
		if pt.ParityMaxRel > experiments.F32Tolerance {
			fmt.Fprintf(os.Stderr, "serve: FAIL float32 engine rel error %.3g vs Model.Forward exceeds %.1g\n",
				pt.ParityMaxRel, experiments.F32Tolerance)
			os.Exit(1)
		}
		fmt.Printf("\nengine parity (float32 twin): max rel error %.3g vs the float64 oracle over forward + the first %d rollout steps (gate %.1g)\n",
			pt.ParityMaxRel, experiments.F32RolloutGateSteps, experiments.F32Tolerance)
		if pt.RolloutMaxRel > 0 {
			fmt.Printf("  full %d-step trajectory drift %.3g (recorded, ungated: the autoregressive map amplifies any perturbation exponentially)\n",
				pt.RolloutSteps, pt.RolloutMaxRel)
		}
	} else {
		if pt.ParityDiffBits != 0 {
			fmt.Fprintf(os.Stderr, "serve: FAIL engine diverged from Model.Forward on %d values (must be bitwise-equal)\n",
				pt.ParityDiffBits)
			os.Exit(1)
		}
		fmt.Printf("\nengine parity: predictions bitwise-equal to Model.Forward (0 differing bit patterns)\n")
	}
	fmt.Printf("\nper-step comparison on the same mesh (%d requests, rank-0 wall clock):\n", pt.Requests)
	fmt.Printf("  training forward step  %12.0f ns\n", pt.TrainForwardNs)
	fmt.Printf("  inference step         %12.0f ns\n", pt.InferNs)
	fmt.Printf("  speedup                %12.3fx  (inference step < training forward step: %v)\n",
		pt.Speedup, pt.InferNs < pt.TrainForwardNs)
	fmt.Printf("\nserving profile:\n")
	fmt.Printf("  throughput  %10.1f req/s\n", pt.ThroughputReqSec)
	fmt.Printf("  latency     mean %.3f ms   p50 %.3f ms   p99 %.3f ms\n",
		pt.LatencyMeanNs/1e6, pt.LatencyP50Ns/1e6, pt.LatencyP99Ns/1e6)
	if pt.RolloutSteps > 0 {
		fmt.Printf("  rollout     %d steps in %.3f ms (%.3f ms/step)\n",
			pt.RolloutSteps, pt.RolloutNs/1e6, pt.RolloutNs/1e6/float64(pt.RolloutSteps))
	}

	if !useProcs {
		if err := serveAPIDemo(box, nRanks, mode, cfg, *batch); err != nil {
			log.Fatal(err)
		}
	}

	if *out != "" {
		data, err := json.MarshalIndent(pt, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nserving point written to %s\n", *out)
	}
}

// serveAPIDemo drives the facade request API: a persistent Server over
// the partitioned system, a burst of Predict requests, and one rollout.
// When batch > 1 the same inputs are replayed as batch concurrent
// requests through a coalescing server and checked bitwise against the
// sequential answers.
func serveAPIDemo(box *mesh.Box, ranks int, mode meshgnn.ExchangeMode, cfg meshgnn.Config, batch int) error {
	sys, err := meshgnn.NewSystem(box, ranks, meshgnn.AutoStrategy)
	if err != nil {
		return err
	}
	mdl, err := meshgnn.NewModel(cfg)
	if err != nil {
		return err
	}
	srv, err := sys.Serve(meshgnn.InProcess, mode, mdl)
	if err != nil {
		return err
	}
	defer srv.Close()

	f := meshgnn.TaylorGreen{V0: 1, L: 1, Nu: 0.01}
	inputs := make([]*meshgnn.Matrix, ranks)
	for r := 0; r < ranks; r++ {
		inputs[r] = field.Sample(f, sys.Locals[r], 0.25)
	}
	const burst = 3
	var seq []*meshgnn.Matrix
	for i := 0; i < burst; i++ {
		outs, err := srv.Predict(inputs)
		if err != nil {
			return err
		}
		if len(outs) != ranks {
			return fmt.Errorf("request API returned %d outputs for %d ranks", len(outs), ranks)
		}
		seq = outs
	}
	trajs, err := srv.Rollout(inputs, 3)
	if err != nil {
		return err
	}
	fmt.Printf("\nrequest API (System.Serve): %d predict requests + one %d-step rollout served on %d ranks\n",
		burst, len(trajs[0])-1, ranks)

	if batch > 1 {
		if err := servedBatchedDemo(sys, mode, mdl, inputs, seq, batch); err != nil {
			return err
		}
	}
	return nil
}

// servedBatchedDemo serves `batch` concurrent copies of the same request
// through a coalescing server so the dispatcher fuses them into one
// block-diagonal evaluation, then verifies every member's answer is
// bitwise-equal to the sequential server's.
func servedBatchedDemo(sys *meshgnn.System, mode meshgnn.ExchangeMode, mdl *meshgnn.Model,
	inputs, want []*meshgnn.Matrix, batch int) error {
	srv, err := sys.ServeWith(meshgnn.InProcess, mode, mdl, meshgnn.ServeOptions{
		MaxBatch:    batch,
		BatchWindow: 50 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	outs := make([][]*meshgnn.Matrix, batch)
	errs := make([]error, batch)
	var wg sync.WaitGroup
	for i := 0; i < batch; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = srv.Predict(inputs)
		}(i)
	}
	wg.Wait()
	for i := 0; i < batch; i++ {
		if errs[i] != nil {
			return fmt.Errorf("batched request %d: %w", i, errs[i])
		}
		for r := range want {
			if !bitwiseEqual(outs[i][r], want[r]) {
				return fmt.Errorf("batched request %d rank %d diverged bitwise from the sequential server", i, r)
			}
		}
	}
	fmt.Printf("batched request API (ServeOptions.MaxBatch=%d): %d concurrent requests coalesced, all bitwise-equal to sequential serving\n",
		batch, batch)
	return nil
}

func bitwiseEqual(a, b *meshgnn.Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

func parseMode(s string) (meshgnn.ExchangeMode, error) {
	switch s {
	case "none":
		return meshgnn.NoExchange, nil
	case "a2a":
		return meshgnn.AllToAll, nil
	case "na2a":
		return meshgnn.NeighborAllToAll, nil
	case "sendrecv":
		return meshgnn.SendRecv, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}
