//go:build !race

package meshgnn

const raceEnabled = false
