package meshgnn

import (
	"errors"
	"math"
	"testing"
	"time"
)

// serveSystem builds a small 2-rank system plus per-rank snapshots.
func serveSystem(t *testing.T) (*System, *Model, []*Matrix) {
	t.Helper()
	m, err := NewMesh(3, 3, 3, 2, FullyPeriodic)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(m, 2, Slabs)
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewModel(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := TaylorGreen{V0: 1, L: 1, Nu: 0.01}
	inputs := make([]*Matrix, sys.Ranks)
	for r := range inputs {
		inputs[r] = SampleField(f, sys.Locals[r], 0.25)
	}
	return sys, model, inputs
}

// TestServePredictMatchesModelForward drives the request API end to end
// on both goroutine transports and checks the served predictions equal a
// direct collective Model.Forward bitwise.
func TestServePredictMatchesModelForward(t *testing.T) {
	sys, model, inputs := serveSystem(t)

	// Reference: the training model evaluated collectively.
	want, err := RunCollect(sys, NeighborAllToAll, func(r *Rank) (*Matrix, error) {
		m, err := NewModel(SmallConfig())
		if err != nil {
			return nil, err
		}
		return m.Forward(r.Ctx, inputs[r.ID()]).Clone(), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, kind := range []TransportKind{InProcess, Sockets} {
		srv, err := sys.Serve(kind, NeighborAllToAll, model)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ { // second pass reuses the bound engines
			got, err := srv.Predict(inputs)
			if err != nil {
				t.Fatal(err)
			}
			for r := range got {
				if got[r].Rows != want[r].Rows || got[r].Cols != want[r].Cols {
					t.Fatalf("rank %d: served %dx%d, want %dx%d",
						r, got[r].Rows, got[r].Cols, want[r].Rows, want[r].Cols)
				}
				for i := range got[r].Data {
					if math.Float64bits(got[r].Data[i]) != math.Float64bits(want[r].Data[i]) {
						t.Fatalf("transport %v rank %d value %d: served %v != model %v",
							kind, r, i, got[r].Data[i], want[r].Data[i])
					}
				}
			}
		}
		if err := srv.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		// Closed servers fail cleanly instead of blocking.
		if _, err := srv.Predict(inputs); err == nil {
			t.Error("Predict after Close succeeded")
		}
		if err := srv.Close(); err != nil {
			t.Errorf("second Close: %v", err)
		}
	}
}

// TestServeRollout checks multi-step rollout requests: trajectory length,
// initial-state passthrough, and agreement with the one-shot Predict on
// the first step.
func TestServeRollout(t *testing.T) {
	sys, model, inputs := serveSystem(t)
	srv, err := sys.Serve(InProcess, NeighborAllToAll, model)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const steps = 3
	trajs, err := srv.Rollout(inputs, steps)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := srv.Predict(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for r, traj := range trajs {
		if len(traj) != steps+1 {
			t.Fatalf("rank %d: trajectory has %d states, want %d", r, len(traj), steps+1)
		}
		if !traj[0].Equal(inputs[r]) {
			t.Fatalf("rank %d: trajectory does not start at the initial snapshot", r)
		}
		for i := range traj[1].Data {
			if math.Float64bits(traj[1].Data[i]) != math.Float64bits(preds[r].Data[i]) {
				t.Fatalf("rank %d: rollout step 1 differs from Predict at value %d", r, i)
			}
		}
	}

	if _, err := srv.Rollout(inputs, 0); err == nil {
		t.Error("Rollout with steps=0 succeeded")
	}
}

// TestServeRequestValidation checks malformed requests are rejected with
// errors instead of panicking rank goroutines.
func TestServeRequestValidation(t *testing.T) {
	sys, model, inputs := serveSystem(t)
	srv, err := sys.Serve(InProcess, NeighborAllToAll, model)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if _, err := srv.Predict(inputs[:1]); err == nil {
		t.Error("wrong snapshot count accepted")
	}
	bad := make([]*Matrix, len(inputs))
	copy(bad, inputs)
	bad[1] = nil
	if _, err := srv.Predict(bad); err == nil {
		t.Error("nil snapshot accepted")
	}
	bad[1] = &Matrix{Rows: 1, Cols: 3, Data: make([]float64, 3)}
	if _, err := srv.Predict(bad); err == nil {
		t.Error("wrong-shape snapshot accepted")
	}
	// The server must still serve correct requests after rejections.
	if _, err := srv.Predict(inputs); err != nil {
		t.Fatalf("valid request after rejections: %v", err)
	}

	if _, err := sys.Serve(Processes, NeighborAllToAll, model); err == nil {
		t.Error("Serve over Processes accepted (requests cannot cross the process boundary)")
	}
}

// calibrateServeSetupOps measures how many transport operations rank 0
// performs during serving setup (handshake, graph split, engine compile)
// by wrapping a throwaway server's endpoints in fault transports and
// closing it before any request. Setup is deterministic, so the count
// carries over to fresh servers built the same way and lets tests aim
// fault events at "the first operation of the first request".
func calibrateServeSetupOps(t *testing.T) int {
	t.Helper()
	sys, model, _ := serveSystem(t)
	fts := make([]*FaultTransport, sys.Ranks)
	srv, err := sys.ServeWith(InProcess, NeighborAllToAll, model, ServeOptions{
		WrapTransport: func(tr Transport) Transport {
			ft := NewFaultTransport(tr, nil)
			fts[ft.Rank()] = ft
			return ft
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("calibration close: %v", err)
	}
	return fts[0].Ops()
}

// TestServeCloseDrainsInFlight pins the drain guarantee: Close issued
// while a request is mid-collective lets the request finish and succeed
// instead of racing the worker goroutines to the channels.
func TestServeCloseDrainsInFlight(t *testing.T) {
	setupOps := calibrateServeSetupOps(t)
	sys, model, inputs := serveSystem(t)
	// Stall rank 0 for 100ms on the first operation of the first request
	// so Close provably arrives while the request is in flight.
	plan := NewFaultPlan().Add(0, FaultEvent{
		AfterOps: setupOps, Kind: FaultDelay, Peer: -1, Delay: 100 * time.Millisecond,
	})
	srv, err := sys.ServeWith(InProcess, NeighborAllToAll, model, ServeOptions{
		WrapTransport: plan.Wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		outs []*Matrix
		err  error
	}
	done := make(chan result, 1)
	go func() {
		outs, err := srv.Predict(inputs)
		done <- result{outs, err}
	}()
	time.Sleep(20 * time.Millisecond) // request dispatched, rank 0 inside the stall
	if err := srv.Close(); err != nil {
		t.Fatalf("Close with in-flight request: %v", err)
	}
	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight request was not drained: %v", res.err)
	}
	if len(res.outs) != sys.Ranks {
		t.Fatalf("drained request returned %d outputs for %d ranks", len(res.outs), sys.Ranks)
	}
}

// TestServePredictTimeoutStalledRank pins the unwind path for a stuck
// collective: a deliberately stalled rank makes its peer's receive
// deadline fire, the caller gets ErrTimeout within its own bound rather
// than hanging, and the server reports the poisoned collective as a
// terminal classified error on later requests and on Close.
func TestServePredictTimeoutStalledRank(t *testing.T) {
	setupOps := calibrateServeSetupOps(t)
	sys, model, inputs := serveSystem(t)
	plan := NewFaultPlan().Add(0, FaultEvent{
		AfterOps: setupOps, Kind: FaultDelay, Peer: -1, Delay: 600 * time.Millisecond,
	})
	srv, err := sys.ServeWith(InProcess, NeighborAllToAll, model, ServeOptions{
		RecvTimeout:   200 * time.Millisecond,
		WrapTransport: plan.Wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = srv.PredictTimeout(inputs, 250*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("stalled collective: want ErrTimeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("PredictTimeout unwound in %v, want ≈250ms", elapsed)
	}
	if _, err := srv.Predict(inputs); err == nil {
		t.Fatal("Predict after a poisoned collective succeeded")
	}
	if err := srv.Close(); err == nil {
		t.Fatal("Close after a poisoned collective reported success")
	} else if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Close error not classified: %v", err)
	}
}

// TestSystemPredictOneShot covers the one-shot convenience wrapper.
func TestSystemPredictOneShot(t *testing.T) {
	sys, model, inputs := serveSystem(t)
	outs, err := sys.Predict(NeighborAllToAll, model, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != sys.Ranks {
		t.Fatalf("got %d outputs for %d ranks", len(outs), sys.Ranks)
	}
	for r, y := range outs {
		if y.Rows != inputs[r].Rows || y.Cols != 3 {
			t.Fatalf("rank %d output is %dx%d", r, y.Rows, y.Cols)
		}
		for _, v := range y.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("rank %d: non-finite prediction", r)
			}
		}
	}
}
