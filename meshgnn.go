// Package meshgnn is the public API of a consistent distributed graph
// neural network library for mesh-based data-driven modeling, reproducing
// "Scalable and Consistent Graph Neural Networks for Distributed
// Mesh-based Data-driven Modeling" (SC24-W).
//
// The library spans the full workflow of the paper's Fig. 1:
//
//   - spectral-element box meshes with GLL quadrature nodes (the NekRS
//     discretization the graphs coincide with);
//   - domain decomposition (slab/pencil/block and RCB partitioners);
//   - distributed mesh-based graph generation with local coincident-node
//     collapse, halo plans, and consistency degree factors;
//   - consistent neural message passing GNNs with differentiable halo
//     exchanges (None / A2A / Neighbor-A2A / Send-Recv modes) and the
//     consistent MSE loss;
//   - an in-process SPMD runtime (goroutine ranks, deterministic
//     collectives) plus a Frontier machine model for paper-scale
//     projections.
//
// A minimal session:
//
//	m, _ := meshgnn.NewMesh(8, 8, 8, 2, meshgnn.FullyPeriodic)
//	sys, _ := meshgnn.NewSystem(m, 4, meshgnn.Blocks)
//	err := sys.Run(meshgnn.NeighborAllToAll, func(r *meshgnn.Rank) error {
//	    model, _ := meshgnn.NewModel(meshgnn.SmallConfig())
//	    trainer := meshgnn.NewTrainer(model, meshgnn.NewAdam(1e-3))
//	    x := r.Sample(meshgnn.TaylorGreen{V0: 1, L: 1, Nu: 0.01}, 0)
//	    for i := 0; i < 100; i++ {
//	        trainer.Step(r.Ctx, x, x)
//	    }
//	    return nil
//	})
//
// Every rank executes the closure collectively; the GNN's outputs and
// gradients are arithmetically identical to an unpartitioned run.
package meshgnn

import (
	"fmt"
	"io"
	"time"

	"meshgnn/internal/comm"
	"meshgnn/internal/field"
	"meshgnn/internal/gnn"
	"meshgnn/internal/graph"
	"meshgnn/internal/mesh"
	"meshgnn/internal/nn"
	"meshgnn/internal/parallel"
	"meshgnn/internal/partition"
	"meshgnn/internal/solver"
	"meshgnn/internal/tensor"
	"meshgnn/internal/vtkio"
)

// Re-exported core types. Aliases keep the public API and the internal
// packages interchangeable.
type (
	// Mesh is a spectral-element box discretization.
	Mesh = mesh.Box
	// Config describes a GNN architecture (paper Table I).
	Config = gnn.Config
	// Model is the encode-process-decode consistent GNN.
	Model = gnn.Model
	// RankContext carries one rank's graph, exchanger and communicator.
	RankContext = gnn.RankContext
	// Trainer drives distributed-data-parallel training.
	Trainer = gnn.Trainer
	// ConsistentMSE is the degree-scaled distributed loss (paper Eq. 6).
	ConsistentMSE = gnn.ConsistentMSE
	// Matrix is a dense row-major float64 matrix.
	Matrix = tensor.Matrix
	// ExchangeMode selects the halo exchange implementation.
	ExchangeMode = comm.ExchangeMode
	// Transport is the point-to-point substrate ranks communicate over
	// (in-process channels or sockets); collectives are built on top of
	// it with transport-independent, bitwise-deterministic reductions.
	Transport = comm.Transport
	// Request is the pooled handle of a nonblocking transport operation
	// (Isend/Irecv), with MPI-style Wait/Test completion — the primitive
	// the overlapped halo pipeline is built on.
	Request = comm.Request
	// StepTiming is the per-phase training-step breakdown (forward, halo
	// — with its exposed-communication subset — loss, backward,
	// allreduce, optimizer), enabled by Trainer.EnableTiming.
	StepTiming = gnn.StepTiming
	// TransportKind selects how ranks are realized and connected:
	// goroutines over channels, goroutines over sockets, or OS processes
	// over sockets.
	TransportKind = comm.TransportKind
	// Strategy selects the Cartesian partition shape.
	Strategy = partition.Strategy
	// RankStats summarizes a rank's sub-graph (paper Table II columns).
	RankStats = partition.RankStats
	// LocalGraph is one rank's reduced sub-graph.
	LocalGraph = graph.Local
	// Field is an analytic vector field used as node data.
	Field = field.Field
	// TaylorGreen is the Taylor–Green vortex field of the paper's runs.
	TaylorGreen = field.TaylorGreen
	// ShearLayer is a periodic shear-layer field.
	ShearLayer = field.ShearLayer
	// GaussianPulse is a diffusing heat-pulse field.
	GaussianPulse = field.GaussianPulse
	// Optimizer updates parameters from gradients.
	Optimizer = nn.Optimizer
	// Diffusion is the distributed explicit diffusion solver sharing
	// the GNN's halo machinery (the in-situ data generator).
	Diffusion = solver.Diffusion
	// Mapping deforms the reference box into a curvilinear domain.
	Mapping = mesh.Mapping
	// ElementMask carves elements out of the box (holes, L-shapes).
	ElementMask = mesh.ElementMask
	// VTKField names a node-attribute matrix for VTK output.
	VTKField = vtkio.FieldData
	// SyntheticTurbulence is a divergence-free random-Fourier velocity
	// field with a Kolmogorov-like spectrum.
	SyntheticTurbulence = field.SyntheticTurbulence
	// Schedule maps a step index to a learning rate.
	Schedule = nn.Schedule
	// CosineSchedule decays the learning rate along a cosine with warmup.
	CosineSchedule = nn.CosineSchedule
	// StepDecay multiplies the rate by Gamma every Every steps.
	StepDecay = nn.StepDecay
	// Dataset holds per-rank (input, target) snapshot pairs.
	Dataset = gnn.Dataset
	// FitOptions configures multi-epoch training with consistent
	// shuffling and noise injection.
	FitOptions = gnn.FitOptions
	// Metrics holds consistent evaluation statistics (MSE, MAE, ...).
	Metrics = gnn.Metrics
	// Inference is the forward-only serving engine compiled from a
	// trained Model: no gradient or backward buffers, a fused
	// encode→NMP→decode arena epoch with persistent preprocessed inputs,
	// and overlapped halo exchange in pure-forward mode. At the default
	// Float64 precision predictions are bitwise-equal to Model.Forward;
	// with Config.Precision = Float32 the engine serves the
	// tolerance-gated single-precision twin instead.
	Inference = gnn.Inference
	// Precision selects the serving engine's numeric representation
	// (Config.Precision; training always runs float64).
	Precision = gnn.Precision
	// FaultPlan is a deterministic per-rank fault schedule; hand its Wrap
	// to RunOnWith or ServeOptions.WrapTransport to inject failures.
	FaultPlan = comm.FaultPlan
	// FaultEvent is one scheduled fault (trigger op, kind, target peer).
	FaultEvent = comm.FaultEvent
	// FaultKind names an injectable failure mode.
	FaultKind = comm.FaultKind
	// FaultTransport interposes a fault schedule on a transport endpoint.
	FaultTransport = comm.FaultTransport
)

// Classified failure sentinels: every transport- or serving-level failure
// wraps exactly one observable class, testable with errors.Is. See the
// README's "Failure contract" for the full taxonomy.
var (
	// ErrPeerDown marks a dead or disconnected peer rank.
	ErrPeerDown = comm.ErrPeerDown
	// ErrTimeout marks an expired wait bound (receive deadline, request
	// deadline, mid-frame IO deadline).
	ErrTimeout = comm.ErrTimeout
	// ErrCorruptFrame marks a socket frame rejected by integrity checks.
	ErrCorruptFrame = comm.ErrCorruptFrame
	// ErrFault marks a failure manufactured by fault injection.
	ErrFault = comm.ErrFault
	// ErrLiveSessions marks an Inference.Refresh refused because session
	// views are still outstanding (or the receiver is itself a view).
	ErrLiveSessions = gnn.ErrLiveSessions
)

// Injectable fault kinds (FaultEvent.Kind).
const (
	// FaultDelay stalls one operation (jitter; result stays correct).
	FaultDelay = comm.FaultDelay
	// FaultPeerDown makes one peer look permanently dead to a rank.
	FaultPeerDown = comm.FaultPeerDown
	// FaultDropSend swallows one outbound message.
	FaultDropSend = comm.FaultDropSend
	// FaultDupSend transmits one outbound message twice.
	FaultDupSend = comm.FaultDupSend
	// FaultCorruptFrame damages one message so the receiver rejects it.
	FaultCorruptFrame = comm.FaultCorruptFrame
	// FaultPanic makes one operation panic with ErrFault.
	FaultPanic = comm.FaultPanic
)

// Serving precisions (Config.Precision, consumed by NewInference).
const (
	// Float64 keeps bitwise train/infer parity (the default).
	Float64 = gnn.Float64
	// Float32 compiles the single-precision serving twin: parameters
	// down-convert and pre-pack once, activations and GEMMs run in
	// float32, predictions track the float64 engine to a tested
	// tolerance and stay bitwise-reproducible across thread counts.
	Float32 = gnn.Float32
)

// Halo exchange modes (paper Sec. III).
const (
	// NoExchange disables halo exchanges: the inconsistent baseline.
	NoExchange = comm.NoExchange
	// AllToAll exchanges uniform buffers among all ranks.
	AllToAll = comm.AllToAllMode
	// NeighborAllToAll exchanges only with true neighbors (N-A2A).
	NeighborAllToAll = comm.NeighborAllToAll
	// SendRecv uses pairwise point-to-point exchanges.
	SendRecv = comm.SendRecvMode
)

// Rank transports (see RunOn).
const (
	// InProcess runs every rank as a goroutine over the channel fabric.
	InProcess = comm.InProcess
	// Sockets runs goroutine ranks over real Unix-domain sockets (the
	// socket wire protocol without the process launcher).
	Sockets = comm.Sockets
	// Processes runs every rank as its own OS process connected over
	// sockets (the -procs launcher mode).
	Processes = comm.Processes
)

// Partition strategies.
const (
	// Slabs splits the longest axis only.
	Slabs = partition.Slabs
	// Pencils splits the two longest axes.
	Pencils = partition.Pencils
	// Blocks splits all three axes near-cubically.
	Blocks = partition.Blocks
	// AutoStrategy uses slabs up to 8 ranks and blocks beyond.
	AutoStrategy = partition.Auto
)

// Periodicity presets.
var (
	// NonPeriodic marks all axes bounded.
	NonPeriodic = [3]bool{false, false, false}
	// FullyPeriodic marks all axes periodic (the TGV configuration).
	FullyPeriodic = [3]bool{true, true, true}
)

// Constructors re-exported from the internal packages.
var (
	// SmallConfig is the paper's small model (3,979 parameters).
	SmallConfig = gnn.SmallConfig
	// LargeConfig is the paper's large model (91,459 parameters).
	LargeConfig = gnn.LargeConfig
	// NewModel builds a GNN from a configuration.
	NewModel = gnn.NewModel
	// NewTrainer pairs a model with an optimizer.
	NewTrainer = gnn.NewTrainer
	// NewAdam returns an Adam optimizer.
	NewAdam = nn.NewAdam
	// NewSGD returns plain stochastic gradient descent.
	NewSGD = nn.NewSGD
	// SampleField fills a node matrix from an analytic field.
	SampleField = field.Sample
	// KineticEnergy is the volume-averaged kinetic energy diagnostic.
	KineticEnergy = field.KineticEnergy
	// GlobalOutputs assembles per-rank outputs by global node ID.
	GlobalOutputs = gnn.GlobalOutputs
	// SaveModel serializes a model (architecture + parameters).
	SaveModel = gnn.SaveModel
	// LoadModel reconstructs a model saved with SaveModel.
	LoadModel = gnn.LoadModel
	// SaveTrainingState checkpoints model + optimizer state + step
	// counter for bitwise-exact training resumption.
	SaveTrainingState = gnn.SaveTrainingState
	// LoadTrainingState restores a trainer saved with SaveTrainingState.
	LoadTrainingState = gnn.LoadTrainingState
	// NoiseField draws partition-consistent Gaussian training noise
	// keyed by global node IDs.
	NoiseField = gnn.NoiseField
	// AnnulusSector maps the box onto a cylindrical annulus sector.
	AnnulusSector = mesh.AnnulusSector
	// WavyChannel perturbs the box walls sinusoidally.
	WavyChannel = mesh.WavyChannel
	// Stretched grades node spacing toward the y=0 wall.
	Stretched = mesh.Stretched
	// NewSyntheticTurbulence builds a synthetic turbulence field.
	NewSyntheticTurbulence = field.NewSyntheticTurbulence
	// Rollout applies a model autoregressively over its own outputs.
	Rollout = gnn.Rollout
	// RolloutError scores a rollout against a reference trajectory.
	RolloutError = gnn.RolloutError
	// ClipGradNorm rescales gradients to a maximum global norm.
	ClipGradNorm = nn.ClipGradNorm
	// Evaluate computes consistent error metrics collectively.
	Evaluate = gnn.Evaluate
	// ParseTransportKind converts the CLI spelling of a transport
	// ("inproc", "sockets", "procs").
	ParseTransportKind = comm.ParseTransportKind
	// IsWorker reports whether this process was spawned by the -procs
	// launcher (MESHGNN_RANK set); commands use it to mute duplicate
	// output in worker ranks.
	IsWorker = comm.IsWorker
	// NewInference compiles a forward-only serving engine from a model
	// (parameters are aliased, not copied).
	NewInference = gnn.NewInference
	// LoadInference reads a SaveModel checkpoint and compiles a serving
	// engine from it.
	LoadInference = gnn.LoadInference
	// NewFaultPlan returns an empty fault schedule (build it with Add).
	NewFaultPlan = comm.NewFaultPlan
	// NewFaultTransport wraps one endpoint with a fault schedule (nil
	// plan = pure op-counting passthrough, useful for calibration).
	NewFaultTransport = comm.NewFaultTransport
	// RandomFaultPlan draws a deterministic fault schedule from a seed.
	RandomFaultPlan = comm.RandomFaultPlan
	// LinkDelay returns a transport interposer that charges a fixed wire
	// latency on every outbound message — the emulation knob behind the
	// concurrent-serving benchmarks (hand it to ServeOptions.WrapTransport).
	LinkDelay = comm.LinkDelay
	// ChainWrap composes transport interposers (innermost first).
	ChainWrap = comm.ChainWrap
)

// SetParallelism configures the process-wide intra-rank compute engine:
// threads bounds the workers each kernel may use (<= 0 resets to
// GOMAXPROCS; 1 runs every kernel inline), and deterministic selects the
// fixed-schedule reductions that make results bitwise-identical for any
// thread count. Intra-rank workers compose with goroutine ranks: the
// pool workers are shared, so R ranks running kernels concurrently add
// at most threads-1 pool goroutines on top of the R rank goroutines
// (each rank also executes chunks itself), rather than R×threads.
//
// Requests beyond runtime.NumCPU() are clamped to the core count unless
// SetOversubscribe(true) was called first: the kernels are compute-bound,
// so extra workers only time-slice against each other — slower, identical
// bits.
func SetParallelism(threads int, deterministic bool) {
	parallel.Configure(parallel.Clamp(threads), deterministic)
}

// SetOversubscribe lifts the runtime.NumCPU() clamp applied by
// SetParallelism and Config.Threads (default off). Enable it only to
// measure oversubscription itself; it never changes numerical results.
func SetOversubscribe(on bool) {
	parallel.SetOversubscribe(on)
}

// Parallelism reports the engine's current (threads, deterministic)
// setting.
func Parallelism() (threads int, deterministic bool) {
	return parallel.Threads(), parallel.Deterministic()
}

// NewMesh constructs a spectral-element box mesh with ex×ey×ez hexahedral
// elements of polynomial order p; periodic axes wrap their coincident
// boundary nodes.
func NewMesh(ex, ey, ez, p int, periodic [3]bool) (*Mesh, error) {
	return mesh.NewBox(ex, ey, ez, p, periodic)
}

// System is a partitioned mesh ready for distributed GNN runs: the
// domain-decomposed graph of the paper's Fig. 3, one sub-graph per rank.
type System struct {
	Mesh   *Mesh
	Ranks  int
	Locals []*graph.Local

	cart *partition.Cartesian
}

// NewSystem decomposes the mesh over the given number of ranks and builds
// every rank's reduced sub-graph with halo plans and degree factors.
func NewSystem(m *Mesh, ranks int, strat Strategy) (*System, error) {
	cart, err := partition.NewCartesian(m, ranks, strat)
	if err != nil {
		return nil, err
	}
	return newSystem(m, ranks, cart)
}

// NewSystemRCB decomposes the mesh with recursive coordinate bisection,
// supporting arbitrary (non-power-of-two) rank counts and irregular
// sub-domains. Consistency holds for any partition.
func NewSystemRCB(m *Mesh, ranks int) (*System, error) {
	part, err := partition.NewRCB(m, ranks)
	if err != nil {
		return nil, err
	}
	return newSystem(m, ranks, part)
}

func newSystem(m *Mesh, ranks int, part partition.Partition) (*System, error) {
	locals, err := graph.BuildAll(m, part)
	if err != nil {
		return nil, err
	}
	if err := graph.ValidateAll(locals); err != nil {
		return nil, fmt.Errorf("meshgnn: graph validation: %w", err)
	}
	cart, _ := part.(*partition.Cartesian)
	return &System{Mesh: m, Ranks: ranks, Locals: locals, cart: cart}, nil
}

// Stats returns per-rank sub-graph statistics (local nodes, halo nodes,
// neighbors).
func (s *System) Stats() []RankStats {
	out := make([]RankStats, s.Ranks)
	for i, l := range s.Locals {
		out[i] = l.Stats()
	}
	return out
}

// Rank is the per-rank view handed to Run closures.
type Rank struct {
	// Ctx bundles the communicator, sub-graph, and halo exchanger.
	Ctx *RankContext
	// Graph is this rank's reduced sub-graph.
	Graph *LocalGraph
	// System points back to the owning system.
	System *System
}

// ID returns the rank index.
func (r *Rank) ID() int { return r.Ctx.Comm.Rank() }

// SetCommTimeout bounds every subsequent blocking communication wait on
// this rank — collectives, halo exchanges, the loss reduction: a wait
// exceeding d fails with an ErrTimeout-classified error instead of
// hanging on a dead or desynchronized peer. d <= 0 restores unbounded
// waits (the default). The bound is realized with a reused per-rank
// timer, so a bounded steady state stays allocation-free.
func (r *Rank) SetCommTimeout(d time.Duration) { r.Ctx.Comm.SetRecvTimeout(d) }

// Sample fills a node-attribute matrix from an analytic field at time t.
func (r *Rank) Sample(f Field, t float64) *Matrix {
	return field.Sample(f, r.Graph, t)
}

// Loss evaluates the consistent MSE between y and target collectively.
func (r *Rank) Loss(y, target *Matrix) float64 {
	var l ConsistentMSE
	return l.Forward(r.Ctx, y, target)
}

// Assemble gathers per-rank outputs into the unpartitioned global matrix
// on rank 0 (nil elsewhere), returning the maximum discrepancy between
// coincident copies as a consistency diagnostic.
func (r *Rank) Assemble(y *Matrix) (*Matrix, float64) {
	return gnn.GlobalOutputs(r.Ctx, y, r.System.Mesh.NumNodes())
}

// NewDiffusion builds the distributed diffusion solver on this rank's
// sub-graph, reusing the rank's halo exchange mode. All ranks must call
// collectively.
func (r *Rank) NewDiffusion(alpha, dt float64) (*Diffusion, error) {
	return solver.NewDiffusion(r.Ctx.Comm, r.System.Mesh, r.Graph, r.Ctx.Ex.Mode, alpha, dt)
}

// WriteVTK writes this rank's sub-graph with the given point-data fields
// as a legacy-VTK unstructured grid for ParaView/VisIt inspection.
func (r *Rank) WriteVTK(w io.Writer, fields ...VTKField) error {
	return vtkio.WriteLocal(w, r.System.Mesh, r.Graph, fields...)
}

// Run executes fn on every rank concurrently (SPMD): each rank gets its
// own goroutine, communicator, and sub-graph. Collective operations
// inside fn (model forward/backward, loss, trainer steps) must be called
// by all ranks in the same order.
func (s *System) Run(mode ExchangeMode, fn func(r *Rank) error) error {
	return s.RunOn(InProcess, mode, fn)
}

// RunOn is Run with an explicit rank transport:
//
//   - InProcess: goroutine ranks over the channel fabric (Run's default);
//   - Sockets: goroutine ranks over real Unix-domain sockets, exercising
//     the full wire protocol inside one process;
//   - Processes: one OS process per rank. The calling process becomes
//     rank 0 and re-execs its binary for ranks 1..R-1 (the MESHGNN_RANK /
//     MESHGNN_WORLD environment protocol); in a spawned worker, RunOn
//     connects as the assigned rank instead. Per-rank return values
//     cannot cross the process boundary, so fn must persist anything a
//     worker needs to hand back (rank 0 runs in the calling process and
//     can capture results in its closure).
//
// The deterministic collectives make training bitwise-identical across
// all three (asserted by cmd/consistency -transport=both).
func (s *System) RunOn(kind TransportKind, mode ExchangeMode, fn func(r *Rank) error) error {
	return s.RunOnWith(kind, mode, nil, fn)
}

// RunOnWith is RunOn with a per-rank transport wrapper applied to every
// endpoint before fn starts — the injection point for fault schedules
// (FaultPlan.Wrap) and any other interposer. A nil wrap degenerates to
// RunOn. Process ranks cannot carry an in-memory wrapper across the exec
// boundary, so Processes with a non-nil wrap is rejected.
func (s *System) RunOnWith(kind TransportKind, mode ExchangeMode, wrap func(Transport) Transport, fn func(r *Rank) error) error {
	run := func(c *comm.Comm) error {
		rc, err := gnn.NewRankContext(c, s.Mesh, s.Locals[c.Rank()], mode)
		if err != nil {
			return err
		}
		return fn(&Rank{Ctx: rc, Graph: s.Locals[c.Rank()], System: s})
	}
	switch kind {
	case InProcess:
		return comm.RunWith(s.Ranks, wrap, run)
	case Sockets:
		return comm.RunSocketsWith(s.Ranks, wrap, run)
	case Processes:
		if wrap != nil {
			return fmt.Errorf("meshgnn: transport wrappers cannot cross the process boundary; use goroutine ranks")
		}
		return comm.RunProcs(s.Ranks, run)
	}
	return fmt.Errorf("meshgnn: unknown transport kind %v", kind)
}

// RunCollect is Run with a per-rank return value, indexed by rank.
func RunCollect[T any](s *System, mode ExchangeMode, fn func(r *Rank) (T, error)) ([]T, error) {
	return comm.RunCollect(s.Ranks, func(c *comm.Comm) (T, error) {
		rc, err := gnn.NewRankContext(c, s.Mesh, s.Locals[c.Rank()], mode)
		if err != nil {
			var zero T
			return zero, err
		}
		return fn(&Rank{Ctx: rc, Graph: s.Locals[c.Rank()], System: s})
	})
}

// VerifyConsistency runs the model on the partitioned system and on the
// equivalent single-rank system, returning the maximum absolute
// difference between the assembled outputs — a direct check of the
// paper's Eq. 2 for arbitrary user configurations.
func VerifyConsistency(s *System, cfg Config, mode ExchangeMode, f Field, t float64) (float64, error) {
	outputs := func(sys *System, m ExchangeMode) (*Matrix, error) {
		res, err := RunCollect(sys, m, func(r *Rank) (*Matrix, error) {
			model, err := gnn.NewModel(cfg)
			if err != nil {
				return nil, err
			}
			y := model.Forward(r.Ctx, r.Sample(f, t))
			out, _ := r.Assemble(y)
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		return res[0], nil
	}
	// RCB at R=1 is the trivial partition and, unlike Cartesian blocks,
	// also handles masked meshes.
	single, err := NewSystemRCB(s.Mesh, 1)
	if err != nil {
		return 0, err
	}
	ref, err := outputs(single, mode)
	if err != nil {
		return 0, err
	}
	got, err := outputs(s, mode)
	if err != nil {
		return 0, err
	}
	if ref == nil || got == nil {
		return 0, fmt.Errorf("meshgnn: assembly returned no output")
	}
	return got.MaxAbsDiff(ref), nil
}
